// Dataset generator CLI: writes a dirty TPC-H database (with identifiers
// propagated and probabilities assigned) to a directory that
// `conquer_shell <dir>` can load.
//
// Run:  ./build/examples/tpch_generate <dir> [sf_milli] [if] [seed]

#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "engine/persist.h"
#include "gen/tpch_dirty.h"

using namespace conquer;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <dir> [sf_milli=5] [if=3] [seed=20060402]\n",
                 argv[0]);
    return 2;
  }
  TpchDirtyConfig config;
  config.scale_factor = (argc > 2 ? std::atoi(argv[2]) : 5) / 1000.0;
  config.inconsistency_factor = argc > 3 ? std::atoi(argv[3]) : 3;
  if (argc > 4) config.seed = std::strtoull(argv[4], nullptr, 10);

  Timer timer;
  auto gen = MakeTpchDirtyDatabase(config);
  if (!gen.ok()) {
    std::fprintf(stderr, "%s\n", gen.status().ToString().c_str());
    return 1;
  }
  std::printf("generated %zu tuples (sf=%.3f, if=%d) in %.2fs\n",
              gen->TotalRows(), config.scale_factor,
              config.inconsistency_factor, timer.ElapsedSeconds());

  timer.Restart();
  if (Status s = SaveDatabase(*gen->db, argv[1], &gen->dirty); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("saved to %s in %.2fs\n", argv[1], timer.ElapsedSeconds());
  std::printf("explore it with:  ./build/examples/conquer_shell %s\n",
              argv[1]);
  return 0;
}
