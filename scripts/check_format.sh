#!/usr/bin/env bash
# Format gate (check-only, never rewrites): clang-format --dry-run over the
# fuzzing subsystem and its tests — the directories introduced together with
# .clang-format. Pre-existing sources are deliberately NOT checked, so this
# gate cannot force a repo-wide reformat.
#
# Usage: scripts/check_format.sh [extra files...]
# Skips gracefully (exit 0) when clang-format is not installed.
set -euo pipefail
cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "check_format: $CLANG_FORMAT not found, skipping format check"
  exit 0
fi

mapfile -t files < <(find src/fuzz tests/fuzz -name '*.cc' -o -name '*.h' \
                     | sort)
files+=("$@")

if [[ "${#files[@]}" -eq 0 ]]; then
  echo "check_format: nothing to check"
  exit 0
fi

echo "check_format: $CLANG_FORMAT --dry-run on ${#files[@]} file(s)"
"$CLANG_FORMAT" --dry-run -Werror "${files[@]}"
echo "check_format: clean"
