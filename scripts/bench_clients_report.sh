#!/usr/bin/env bash
# Serving-layer sweep comparison: fresh BENCH_clients.json vs the committed
# baseline. Reports per-client-count QPS and p99 movement plus the plan-
# cache hit rate; flags a client count when QPS drops by more than
# TOLERANCE_PCT.
#
# Throughput on shared CI runners is far noisier than single-query wall
# clock, and the committed baseline records a different machine (its
# hardware_threads field says which) — so unlike bench_check.sh this
# script is report-only unless GATING=1.
#
# Usage:
#   scripts/bench_clients_report.sh [BASELINE_JSON] [FRESH_JSON]
#
# Environment knobs:
#   TOLERANCE_PCT=N  allowed QPS drop per client count, percent (default 30)
#   GATING=1         exit non-zero on a flagged drop (default: report only)
set -euo pipefail

cd "$(dirname "$0")/.."

BASELINE="${1:-BENCH_clients.json}"
FRESH="${2:-BENCH_clients.json}"
TOLERANCE_PCT="${TOLERANCE_PCT:-30}"
GATING="${GATING:-0}"

for f in "$BASELINE" "$FRESH"; do
  if [[ ! -f "$f" ]]; then
    echo "bench_clients_report: $f not found" >&2
    exit 2
  fi
done

compare_status=0
python3 - "$BASELINE" "$FRESH" "$TOLERANCE_PCT" <<'PY' || compare_status=$?
import json
import sys

baseline_path, fresh_path = sys.argv[1], sys.argv[2]
tol_pct = float(sys.argv[3])


def load(path):
    with open(path) as f:
        doc = json.load(f)
    return doc, {r["clients"]: r for r in doc["results"]}


base_doc, base = load(baseline_path)
fresh_doc, fresh = load(fresh_path)
print(f"  baseline: {base_doc.get('hardware_threads', '?')} hw threads "
      f"@ {base_doc.get('git_sha', '?')}, "
      f"fresh: {fresh_doc.get('hardware_threads', '?')} hw threads "
      f"@ {fresh_doc.get('git_sha', '?')}")

flagged = []
for clients in sorted(set(base) | set(fresh)):
    b, f = base.get(clients), fresh.get(clients)
    if b is None or f is None:
        print(f"  {clients:>3} clients: only in "
              f"{'fresh' if b is None else 'baseline'} run")
        continue
    ratio = f["qps"] / b["qps"] if b["qps"] > 0 else float("inf")
    status = "ok"
    if ratio < 1 - tol_pct / 100:
        status = "REGRESSED"
        flagged.append(clients)
    print(f"  {clients:>3} clients: qps {b['qps']:8.1f} -> {f['qps']:8.1f} "
          f"({ratio:5.2f}x)  p99 {b['p99_ms']:8.3f} -> {f['p99_ms']:8.3f} ms"
          f"  hit rate {100 * f['cache_hit_rate']:5.1f}%  {status}")

low_hit = [c for c, r in fresh.items() if r["cache_hit_rate"] < 0.9]
if low_hit:
    print(f"bench_clients_report: WARNING — plan-cache hit rate below 90% "
          f"at client counts {sorted(low_hit)}")

if flagged:
    print(f"bench_clients_report: QPS drop >{tol_pct:.0f}% at client "
          f"counts {flagged}")
    sys.exit(1)
print("bench_clients_report: OK")
PY

if [[ "$compare_status" -ne 0 && "$GATING" != "1" ]]; then
  echo "bench_clients_report: report-only — differences reported above, exit 0"
  exit 0
fi
exit "$compare_status"
