#!/usr/bin/env bash
# Regression gate for the rewritten-query benchmark numbers.
#
# Runs a fresh Figure-8 sweep and compares the Rewritten/* wall-clock times
# against the committed baseline (BENCH_fig8.json). Fails when any rewritten
# query is more than TOLERANCE_PCT slower than its committed number, so a
# perf regression in the clean-answer execution path shows up as a red test
# instead of a silently re-recorded baseline.
#
# Usage:
#   scripts/bench_check.sh [FIG8_BINARY] [BASELINE_JSON] [FRESH_JSON]
#
# With no arguments, builds the Release tree and uses its fig8 binary
# against the repo-root baseline. CTest (label `bench`, Release builds
# only) passes the current build's binary explicitly. When FRESH_JSON is
# given, the benchmark is NOT re-run: the existing results file (e.g. the
# one bench_smoke.sh just wrote) is compared directly.
#
# Environment knobs:
#   TOLERANCE_PCT=N  allowed slowdown per query, percent (default 25)
#   MIN_DELTA_MS=X   absolute slack: a query only fails when it is ALSO
#                    more than X ms slower (default 2.0) — sub-10ms queries
#                    show >25% run-to-run noise on a shared machine
#   REPORT_ONLY=1    print the comparison but always exit 0 — for
#                    non-gating CI jobs on noisy shared runners
set -euo pipefail

cd "$(dirname "$0")/.."

BIN="${1:-}"
BASELINE="${2:-BENCH_fig8.json}"
FRESH="${3:-}"
TOLERANCE_PCT="${TOLERANCE_PCT:-25}"
MIN_DELTA_MS="${MIN_DELTA_MS:-2.0}"
REPORT_ONLY="${REPORT_ONLY:-0}"

if [[ ! -f "$BASELINE" ]]; then
  echo "bench_check: baseline $BASELINE not found" >&2
  exit 2
fi

if [[ -n "$FRESH" ]]; then
  if [[ ! -f "$FRESH" ]]; then
    echo "bench_check: fresh results $FRESH not found" >&2
    exit 2
  fi
  echo "== bench_check: comparing existing results ($FRESH) =="
else
  if [[ -z "$BIN" ]]; then
    cmake --preset release >/dev/null
    cmake --build build-release -j"$(nproc)" --target fig8_query_overhead \
      >/dev/null
    BIN=./build-release/bench/fig8_query_overhead
  fi
  if [[ ! -x "$BIN" ]]; then
    echo "bench_check: fig8 binary not found at $BIN" >&2
    exit 2
  fi
  FRESH="$(mktemp /tmp/bench_check_fig8.XXXXXX.json)"
  trap 'rm -f "$FRESH"' EXIT
  echo "== bench_check: fresh Figure-8 run ($BIN) =="
  "$BIN" --json="$FRESH" >/dev/null
fi

compare_status=0
python3 - "$BASELINE" "$FRESH" "$TOLERANCE_PCT" "$MIN_DELTA_MS" <<'PY' \
  || compare_status=$?
import json
import sys

baseline_path, fresh_path = sys.argv[1], sys.argv[2]
tol_pct, min_delta_ms = float(sys.argv[3]), float(sys.argv[4])


def rewritten_times(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for r in doc["results"]:
        if "/Rewritten/" not in r["name"] or r.get("threads", 1) != 1:
            continue
        # "Fig8/Rewritten/Q9/threads:1/..." -> "Q9"
        query = r["name"].split("/Rewritten/")[1].split("/")[0]
        out[query] = r["wall_ms"]
    return out


base = rewritten_times(baseline_path)
fresh = rewritten_times(fresh_path)
missing = sorted(set(base) - set(fresh))
if missing:
    print(f"bench_check: FAIL — queries missing from fresh run: {missing}")
    sys.exit(1)

failed = []
for query in sorted(base, key=lambda q: (len(q), q)):
    ratio = fresh[query] / base[query] if base[query] > 0 else float("inf")
    delta = fresh[query] - base[query]
    status = "ok"
    if ratio > 1 + tol_pct / 100 and delta > min_delta_ms:
        status = "REGRESSED"
        failed.append(query)
    print(f"  {query:>4}: baseline {base[query]:9.3f} ms, "
          f"fresh {fresh[query]:9.3f} ms  ({ratio:5.2f}x)  {status}")

if failed:
    print(f"bench_check: FAIL — rewritten queries slower than baseline "
          f"by >{tol_pct:.0f}%: {failed}")
    sys.exit(1)
print(f"bench_check: OK — all rewritten queries within {tol_pct:.0f}% "
      f"of the committed baseline")
PY

# Non-gating: when the selective-lookup benchmark sits next to the fig8
# binary, run the in-memory families at smoke scale and report the
# point-query index speedup. Informational only — the gated speedup
# assertion lives in the committed BENCH_selective.json numbers.
SELECTIVE_BIN="${SELECTIVE_BIN:-$(dirname "${BIN:-.}")/selective_lookups}"
if [[ -x "$SELECTIVE_BIN" ]]; then
  SEL_JSON="$(mktemp /tmp/bench_check_selective.XXXXXX.json)"
  echo "== bench_check: selective-lookup report (non-gating) =="
  if "$SELECTIVE_BIN" --sf=10 --benchmark_filter='^Selective/' \
      --json="$SEL_JSON" >/dev/null 2>&1; then
    python3 - "$SEL_JSON" <<'PY' || true
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
times = {r["name"]: r["wall_ms"] for r in doc["results"]}
for family in ("Point", "Range"):
    on = next((v for k, v in times.items()
               if f"/{family}/" in k and "/index:1/" in k), None)
    off = next((v for k, v in times.items()
                if f"/{family}/" in k and "/index:0/" in k), None)
    if on and off:
        print(f"  {family:>5}: index {on:8.3f} ms, scan {off:8.3f} ms "
              f"({off / on:5.1f}x speedup)")
PY
  else
    echo "  selective run failed (non-gating, ignored)"
  fi
  rm -f "$SEL_JSON"
fi

if [[ "$compare_status" -ne 0 && "$REPORT_ONLY" == "1" ]]; then
  echo "bench_check: REPORT_ONLY=1 — regressions reported above, exit 0"
  exit 0
fi
exit "$compare_status"
