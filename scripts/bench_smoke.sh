#!/usr/bin/env bash
# Builds the Release tree and records the headline benchmark numbers as
# JSON in the repo root:
#
#   BENCH_fig8.json   - clean-answer query overhead (Figure 8)
#   BENCH_fig10.json  - scalability with database size (Figure 10)
#
# Each file carries per-benchmark wall-clock ms, rows/sec, thread count,
# plus the batch size and git sha the numbers were taken at.
#
# Environment knobs:
#   THREADS=N   also sweep the parallel executor up to N workers (default 1)
#   FILTER=RE   restrict to benchmarks matching RE (--benchmark_filter)
set -euo pipefail

cd "$(dirname "$0")/.."

THREADS="${THREADS:-1}"
FILTER="${FILTER:-}"

cmake --preset release >/dev/null
cmake --build build-release -j"$(nproc)" --target fig8_query_overhead fig10_scalability

filter_args=()
if [[ -n "$FILTER" ]]; then
  filter_args+=("--benchmark_filter=$FILTER")
fi

echo "== Figure 8: query overhead (threads=$THREADS) =="
./build-release/bench/fig8_query_overhead \
  --threads="$THREADS" --json=BENCH_fig8.json "${filter_args[@]}"

echo "== Figure 10: scalability (threads=$THREADS) =="
./build-release/bench/fig10_scalability \
  --threads="$THREADS" --json=BENCH_fig10.json "${filter_args[@]}"

echo "Wrote BENCH_fig8.json and BENCH_fig10.json"
