#!/usr/bin/env bash
# Builds the Release tree and records the headline benchmark numbers as
# JSON in the repo root:
#
#   BENCH_fig8.json     - clean-answer query overhead (Figure 8)
#   BENCH_fig10.json    - scalability with database size (Figure 10)
#   BENCH_clients.json  - serving-layer client sweep (QPS + latency
#                         percentiles + plan-cache hit rate per client count)
#   BENCH_selective.json - selective point/range lookups, per-chunk index
#                          on vs off, in memory and under a 10% budget
#
# Each file carries per-benchmark wall-clock ms, rows/sec, thread count,
# plus the batch size and git sha the numbers were taken at.
#
# Environment knobs:
#   THREADS=N   also sweep the parallel executor up to N workers (default 1)
#   FILTER=RE   restrict to benchmarks matching RE (--benchmark_filter)
set -euo pipefail

cd "$(dirname "$0")/.."

THREADS="${THREADS:-1}"
FILTER="${FILTER:-}"

cmake --preset release >/dev/null
cmake --build build-release -j"$(nproc)" --target fig8_query_overhead \
  fig10_scalability clients_throughput selective_lookups

filter_args=()
if [[ -n "$FILTER" ]]; then
  filter_args+=("--benchmark_filter=$FILTER")
fi

echo "== Figure 8: query overhead (threads=$THREADS) =="
./build-release/bench/fig8_query_overhead \
  --threads="$THREADS" --json=BENCH_fig8.json "${filter_args[@]}"

echo "== Figure 10: scalability (threads=$THREADS) =="
./build-release/bench/fig10_scalability \
  --threads="$THREADS" --json=BENCH_fig10.json "${filter_args[@]}"

# The serving sweep always uses a multi-threaded pool — the point is
# concurrent clients over one scheduler, not the single-query sweep above.
CLIENT_THREADS="$THREADS"
if [[ "$CLIENT_THREADS" -lt 4 ]]; then CLIENT_THREADS=4; fi
echo "== Serving layer: client sweep (db threads=$CLIENT_THREADS) =="
./build-release/bench/clients_throughput \
  --clients=1,2,4,8 --threads="$CLIENT_THREADS" --seconds=2 --sf-milli=10 \
  --json=BENCH_clients.json

echo "== Selective lookups: per-chunk index on vs off =="
./build-release/bench/selective_lookups \
  --json=BENCH_selective.json "${filter_args[@]}"

echo "Wrote BENCH_fig8.json, BENCH_fig10.json, BENCH_clients.json and" \
     "BENCH_selective.json"
