#!/usr/bin/env bash
# Sanitizer gate, suitable for CI:
#   asan  ASan + UBSan build, fast tier-1 suite  (memory / UB bugs)
#   tsan  TSan build, concurrency-labeled suite  (data races in the
#         morsel-driven parallel executor and the task pool)
#
# Usage: scripts/check_sanitizers.sh [asan|tsan|all] [jobs]
#
# Build trees live in build-asan/ and build-tsan/ next to build/ and are
# reused across runs. Every requested configuration runs even when an
# earlier one fails; the exit code is non-zero if ANY configuration failed
# (not just the last one).

set -uo pipefail
cd "$(dirname "$0")/.."

CONFIG="${1:-all}"
JOBS="${2:-$(nproc)}"

case "$CONFIG" in
  asan|tsan|all) ;;
  *)
    echo "usage: $0 [asan|tsan|all] [jobs]" >&2
    exit 2
    ;;
esac

run_suite() {
  local dir="$1" sanitize="$2" label="$3"
  echo "=== ${sanitize}: configuring ${dir} ===" &&
  # Instrumented trees only need the test binaries, not benches/examples.
  cmake -B "${dir}" -S . -DCONQUER_SANITIZE="${sanitize}" \
        -DCONQUER_BUILD_AUX=OFF -DCMAKE_BUILD_TYPE=RelWithDebInfo &&
  echo "=== ${sanitize}: building ===" &&
  cmake --build "${dir}" -j "${JOBS}" &&
  echo "=== ${sanitize}: ctest -L ${label} ===" &&
  ctest --test-dir "${dir}" -L "${label}" --output-on-failure -j "${JOBS}"
}

status=0

if [[ "$CONFIG" == "asan" || "$CONFIG" == "all" ]]; then
  if ! run_suite build-asan address tier1; then
    echo "=== address: FAILED ===" >&2
    status=1
  fi
fi

if [[ "$CONFIG" == "tsan" || "$CONFIG" == "all" ]]; then
  if ! run_suite build-tsan thread concurrency; then
    echo "=== thread: FAILED ===" >&2
    status=1
  fi
fi

if [[ "$status" -eq 0 ]]; then
  echo "=== sanitizers clean ==="
else
  echo "=== sanitizer failures detected ===" >&2
fi
exit "$status"
