#!/usr/bin/env bash
# Sanitizer gate, suitable for CI:
#   1. ASan + UBSan build, fast tier-1 suite   (memory / UB bugs)
#   2. TSan build, concurrency-labeled suite   (data races in the
#      morsel-driven parallel executor and the task pool)
#
# Usage: scripts/check_sanitizers.sh [jobs]
# Build trees live in build-asan/ and build-tsan/ next to build/ and are
# reused across runs.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

run_suite() {
  local dir="$1" sanitize="$2" label="$3"
  echo "=== ${sanitize}: configuring ${dir} ==="
  # Instrumented trees only need the test binaries, not benches/examples.
  cmake -B "${dir}" -S . -DCONQUER_SANITIZE="${sanitize}" \
        -DCONQUER_BUILD_AUX=OFF -DCMAKE_BUILD_TYPE=RelWithDebInfo
  echo "=== ${sanitize}: building ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== ${sanitize}: ctest -L ${label} ==="
  ctest --test-dir "${dir}" -L "${label}" --output-on-failure -j "${JOBS}"
}

run_suite build-asan address tier1
run_suite build-tsan thread concurrency

echo "=== sanitizers clean ==="
