// Tests of RewriteClean (paper Section 3, Fig. 4) against the worked
// examples and against the naive oracle.

#include <gtest/gtest.h>

#include "core/clean_engine.h"
#include "core/naive_eval.h"
#include "tests/core/paper_fixtures.h"

namespace conquer {
namespace {

class RewriteTest : public ::testing::Test {
 protected:
  void SetUp() override { LoadFigure2(&db_, &dirty_); }

  /// Asserts that the rewriting and the naive oracle agree on `sql`.
  void ExpectRewriteMatchesNaive(const std::string& sql) {
    CleanAnswerEngine engine(&db_, &dirty_);
    NaiveCandidateEvaluator naive(&db_, &dirty_);
    auto fast = engine.Query(sql);
    ASSERT_TRUE(fast.ok()) << fast.status().ToString() << " for: " << sql;
    auto slow = naive.Evaluate(sql);
    ASSERT_TRUE(slow.ok()) << slow.status().ToString();
    EXPECT_EQ(fast->answers.size(), slow->answers.size()) << "for: " << sql;
    for (const CleanAnswer& a : slow->answers) {
      EXPECT_NEAR(fast->ProbabilityOf(a.row), a.probability, 1e-9)
          << "row mismatch for " << sql;
    }
    for (const CleanAnswer& a : fast->answers) {
      EXPECT_NEAR(slow->ProbabilityOf(a.row), a.probability, 1e-9)
          << "extra rewritten row for " << sql;
    }
  }

  Database db_;
  DirtySchema dirty_;
};

// Example 5: single-relation selection rewrites to group-and-sum.
TEST_F(RewriteTest, Example5SingleTable) {
  CleanAnswerEngine engine(&db_, &dirty_);
  auto answers =
      engine.Query("select id from customer c where balance > 10000");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  ASSERT_EQ(answers->answers.size(), 2u);
  EXPECT_NEAR(answers->ProbabilityOf({Value::String("c1")}), 1.0, 1e-12);
  EXPECT_NEAR(answers->ProbabilityOf({Value::String("c2")}), 0.2, 1e-12);
}

// Example 6: foreign-key join rewrites to group-and-sum over the product.
TEST_F(RewriteTest, Example6Join) {
  CleanAnswerEngine engine(&db_, &dirty_);
  auto answers = engine.Query(
      "select o.id, c.id from orders o, customer c "
      "where o.cidfk = c.id and c.balance > 10000");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  ASSERT_EQ(answers->answers.size(), 3u);
  EXPECT_NEAR(
      answers->ProbabilityOf({Value::String("o1"), Value::String("c1")}), 1.0,
      1e-12);
  EXPECT_NEAR(
      answers->ProbabilityOf({Value::String("o2"), Value::String("c1")}), 0.5,
      1e-12);
  EXPECT_NEAR(
      answers->ProbabilityOf({Value::String("o2"), Value::String("c2")}), 0.1,
      1e-12);
}

// The rewritten SQL has the Fig. 4 shape: original items + SUM(prob
// product), grouped by the original items.
TEST_F(RewriteTest, RewrittenSqlShape) {
  CleanAnswerEngine engine(&db_, &dirty_);
  auto sql = engine.RewrittenSql(
      "select o.id, c.id from orders o, customer c "
      "where o.cidfk = c.id and c.balance > 10000");
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  EXPECT_NE(sql->find("SUM(o.prob * c.prob) AS clean_prob"),
            std::string::npos)
      << *sql;
  EXPECT_NE(sql->find("GROUP BY o.id, c.id"), std::string::npos) << *sql;
}

// The rewritten statement is itself parseable and executable SQL.
TEST_F(RewriteTest, RewrittenSqlRoundTrips) {
  CleanAnswerEngine engine(&db_, &dirty_);
  auto sql = engine.RewrittenSql(
      "select o.id, c.id from orders o, customer c "
      "where o.cidfk = c.id and c.balance > 10000");
  ASSERT_TRUE(sql.ok());
  auto rs = db_.Query(*sql);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString() << "\nSQL: " << *sql;
  EXPECT_EQ(rs->num_rows(), 3u);
}

TEST_F(RewriteTest, AgreesWithNaiveOnPaperQueries) {
  ExpectRewriteMatchesNaive("select id from customer c where balance > 10000");
  ExpectRewriteMatchesNaive(
      "select o.id, c.id from orders o, customer c "
      "where o.cidfk = c.id and c.balance > 10000");
  ExpectRewriteMatchesNaive(
      "select o.id, c.id from orders o, customer c where o.cidfk = c.id");
  ExpectRewriteMatchesNaive(
      "select o.id, c.id, c.name from orders o, customer c "
      "where o.cidfk = c.id and o.quantity < 5");
  ExpectRewriteMatchesNaive("select id, name from customer c");
  ExpectRewriteMatchesNaive(
      "select o.id, o.quantity from orders o where o.quantity >= 3");
}

// Selections on the probability column itself are legal SPJ predicates.
TEST_F(RewriteTest, SelectionOnProbabilityColumn) {
  ExpectRewriteMatchesNaive(
      "select id from customer c where prob > 0.5 and balance < 25000");
}

// An answer that appears in no candidate is simply absent (not probability
// zero rows).
TEST_F(RewriteTest, ImpossibleAnswersAbsent) {
  CleanAnswerEngine engine(&db_, &dirty_);
  auto answers =
      engine.Query("select id from customer c where balance > 99999999");
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->answers.empty());
}

// ORDER BY on the original query survives the rewriting (paper Section 5
// measures Query 3 with its ORDER BY in place).
TEST_F(RewriteTest, OrderByPreserved) {
  CleanAnswerEngine engine(&db_, &dirty_);
  auto answers = engine.Query(
      "select o.id, c.id from orders o, customer c "
      "where o.cidfk = c.id order by o.id desc");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  // Groups: (o1,c1), (o2,c1), (o2,c2), sorted by o.id descending.
  ASSERT_EQ(answers->answers.size(), 3u);
  EXPECT_EQ(answers->answers[0].row[0].string_value(), "o2");
  EXPECT_EQ(answers->answers[2].row[0].string_value(), "o1");
}

// Identifier-identifier joins are allowed by Dfn 7 (they correspond to key
// joins between dirty relations).
TEST_F(RewriteTest, IdentifierIdentifierJoin) {
  // A second table keyed by the same customer identifiers.
  TableSchema vip("vip", {{"id", DataType::kString},
                          {"level", DataType::kString},
                          {"prob", DataType::kDouble}});
  ASSERT_TRUE(db_.CreateTable(vip).ok());
  ASSERT_TRUE(db_.Insert("vip", {Value::String("c1"), Value::String("gold"),
                                 Value::Double(0.6)})
                  .ok());
  ASSERT_TRUE(db_.Insert("vip", {Value::String("c1"), Value::String("silver"),
                                 Value::Double(0.4)})
                  .ok());
  ASSERT_TRUE(db_.Insert("vip", {Value::String("c2"), Value::String("bronze"),
                                 Value::Double(1.0)})
                  .ok());
  ASSERT_TRUE(dirty_.AddTable({"vip", "id", "prob", {}}).ok());

  ExpectRewriteMatchesNaive(
      "select c.id, v.level from customer c, vip v where c.id = v.id");
  ExpectRewriteMatchesNaive(
      "select c.id, v.level, c.name from customer c, vip v "
      "where c.id = v.id and c.balance > 10000");
}

// Clean relations (no prob column) participate with probability 1.
TEST_F(RewriteTest, CleanRelationInJoin) {
  TableSchema region("region", {{"rid", DataType::kString},
                                {"rname", DataType::kString}});
  ASSERT_TRUE(db_.CreateTable(region).ok());
  ASSERT_TRUE(
      db_.Insert("region", {Value::String("c1"), Value::String("north")})
          .ok());
  ASSERT_TRUE(
      db_.Insert("region", {Value::String("c2"), Value::String("south")})
          .ok());
  ASSERT_TRUE(dirty_.AddTable({"region", "rid", "", {}}).ok());

  ExpectRewriteMatchesNaive(
      "select c.id, r.rname from customer c, region r where c.id = r.rid");
}

// Three-level chain: a table referencing orders, which references customer.
TEST_F(RewriteTest, ThreeLevelJoinChain) {
  TableSchema shipment("shipment", {{"id", DataType::kString},
                                    {"oidfk", DataType::kString},
                                    {"mode", DataType::kString},
                                    {"prob", DataType::kDouble}});
  ASSERT_TRUE(db_.CreateTable(shipment).ok());
  auto ship = [&](const char* id, const char* oid, const char* mode,
                  double p) {
    ASSERT_TRUE(db_.Insert("shipment",
                           {Value::String(id), Value::String(oid),
                            Value::String(mode), Value::Double(p)})
                    .ok());
  };
  ship("s1", "o1", "air", 0.5);
  ship("s1", "o2", "sea", 0.5);
  ship("s2", "o2", "rail", 1.0);
  ASSERT_TRUE(
      dirty_.AddTable({"shipment", "id", "prob", {{"oidfk", "orders"}}}).ok());

  ExpectRewriteMatchesNaive(
      "select s.id, o.id, c.id from shipment s, orders o, customer c "
      "where s.oidfk = o.id and o.cidfk = c.id");
  ExpectRewriteMatchesNaive(
      "select s.id, s.mode, o.id, c.id from shipment s, orders o, customer c "
      "where s.oidfk = o.id and o.cidfk = c.id and c.balance > 10000");
}

}  // namespace
}  // namespace conquer
