// Property-based validation of Theorem 1: on randomized dirty databases and
// randomized rewritable queries, RewriteClean computes exactly the clean
// answers that candidate enumeration (Dfn 3-5) defines.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "common/str_util.h"
#include "core/clean_engine.h"
#include "core/naive_eval.h"

namespace conquer {
namespace {

/// A randomly generated dirty database: a join tree of 1-3 tables with the
/// root at t0 (t0 references t1, and t2 hangs off t0 or t1).
struct RandomDirtyDb {
  Database db;
  DirtySchema dirty;
  std::vector<std::string> tables;            // "t0", "t1", ...
  std::vector<std::vector<std::string>> attrs;  // attribute columns per table
  std::vector<int> parent_of;  // parent_of[i] = table that references i (-1)
};

void BuildRandomDb(uint64_t seed, RandomDirtyDb* out) {
  Rng rng(seed);
  int num_tables = static_cast<int>(rng.Uniform(1, 3));

  // Decide the tree: table 0 is the root; each further table is referenced
  // by some earlier table (arcs parent -> child, as non-id = id joins).
  std::vector<int> referenced_by(num_tables, -1);
  for (int t = 1; t < num_tables; ++t) {
    referenced_by[t] = static_cast<int>(rng.Uniform(0, t - 1));
  }
  out->parent_of = referenced_by;

  // Entities and cluster sizes, capped so candidate enumeration stays small.
  std::vector<std::vector<int>> sizes(num_tables);
  int64_t product = 1;
  for (int t = 0; t < num_tables; ++t) {
    int entities = static_cast<int>(rng.Uniform(2, 4));
    for (int e = 0; e < entities; ++e) {
      int k = static_cast<int>(rng.Uniform(1, 3));
      sizes[t].push_back(k);
      product *= k;
    }
  }
  // Shrink clusters until the candidate count is tame.
  while (product > 1024) {
    for (auto& table_sizes : sizes) {
      for (int& k : table_sizes) {
        if (k > 1 && product > 1024) {
          product /= k;
          k = 1;
        }
      }
    }
  }

  // Create tables: children before parents so FK targets exist.
  for (int t = num_tables - 1; t >= 0; --t) {
    std::string name = "t" + std::to_string(t);
    std::vector<ColumnDef> cols = {{"id", DataType::kString}};
    int num_attrs = static_cast<int>(rng.Uniform(1, 2));
    std::vector<std::string> attr_names;
    for (int a = 0; a < num_attrs; ++a) {
      attr_names.push_back(StringPrintf("a%d_%d", t, a));
      cols.push_back({attr_names.back(), DataType::kInt64});
    }
    // FK columns for every child this table references.
    std::vector<int> children;
    for (int c = 0; c < num_tables; ++c) {
      if (referenced_by[c] == t) children.push_back(c);
    }
    for (int c : children) {
      cols.push_back({StringPrintf("fk%d", c), DataType::kString});
    }
    cols.push_back({"prob", DataType::kDouble});
    ASSERT_TRUE(out->db.CreateTable(TableSchema(name, cols)).ok());

    DirtyTableInfo info;
    info.table_name = name;
    info.id_column = "id";
    info.prob_column = "prob";
    for (int c : children) {
      info.foreign_ids.push_back(
          {StringPrintf("fk%d", c), "t" + std::to_string(c)});
    }
    ASSERT_TRUE(out->dirty.AddTable(info).ok());

    // Rows: per entity, per duplicate.
    for (size_t e = 0; e < sizes[t].size(); ++e) {
      int k = sizes[t][e];
      std::vector<double> probs(k);
      double sum = 0;
      for (double& p : probs) {
        p = 0.1 + rng.NextDouble();
        sum += p;
      }
      for (double& p : probs) p /= sum;
      for (int j = 0; j < k; ++j) {
        Row row;
        row.push_back(Value::String(StringPrintf("t%d_e%zu", t, e)));
        for (int a = 0; a < num_attrs; ++a) {
          row.push_back(Value::Int(rng.Uniform(0, 5)));  // small domain
        }
        for (int c : children) {
          int64_t target = rng.Uniform(
              0, static_cast<int64_t>(sizes[c].size()) - 1);
          row.push_back(Value::String(StringPrintf("t%d_e%lld", c,
                                                   (long long)target)));
        }
        row.push_back(Value::Double(probs[j]));
        ASSERT_TRUE(out->db.Insert(name, std::move(row)).ok());
      }
    }
    out->tables.insert(out->tables.begin(), name);
    out->attrs.insert(out->attrs.begin(), attr_names);
  }
  // tables/attrs were built in reverse order; they are now t0..tN-1.
}

std::string BuildRandomRewritableQuery(uint64_t seed,
                                       const RandomDirtyDb& db) {
  Rng rng(seed ^ 0xabcdef);
  int n = static_cast<int>(db.tables.size());
  // SELECT: root id plus a random subset of attributes (and maybe other ids).
  std::vector<std::string> select = {"t0.id"};
  for (int t = 0; t < n; ++t) {
    for (const std::string& a : db.attrs[t]) {
      if (rng.Chance(0.6)) {
        select.push_back(db.tables[t] + "." + a);
      }
    }
    if (t > 0 && rng.Chance(0.4)) select.push_back(db.tables[t] + ".id");
  }
  // WHERE: the tree joins plus random selections.
  std::vector<std::string> where;
  for (int t = 1; t < n; ++t) {
    where.push_back(StringPrintf("t%d.fk%d = t%d.id", db.parent_of[t], t, t));
  }
  const char* ops[] = {"=", "<>", "<", "<=", ">", ">="};
  for (int t = 0; t < n; ++t) {
    for (const std::string& a : db.attrs[t]) {
      if (rng.Chance(0.5)) {
        where.push_back(StringPrintf("%s.%s %s %lld", db.tables[t].c_str(),
                                     a.c_str(), ops[rng.Uniform(0, 5)],
                                     (long long)rng.Uniform(0, 5)));
      }
    }
  }
  std::string sql = "select " + Join(select, ", ") + " from ";
  for (int t = 0; t < n; ++t) {
    if (t > 0) sql += ", ";
    sql += db.tables[t];
  }
  if (!where.empty()) sql += " where " + Join(where, " and ");
  return sql;
}

class RewriteVsNaiveProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RewriteVsNaiveProperty, RewriteMatchesCandidateEnumeration) {
  RandomDirtyDb rdb;
  BuildRandomDb(GetParam(), &rdb);

  for (uint64_t qseed = 0; qseed < 4; ++qseed) {
    std::string sql =
        BuildRandomRewritableQuery(GetParam() * 131 + qseed, rdb);
    SCOPED_TRACE(sql);

    CleanAnswerEngine engine(&rdb.db, &rdb.dirty);
    auto check = engine.Check(sql);
    ASSERT_TRUE(check.ok()) << check.status().ToString();
    ASSERT_TRUE(check->rewritable) << check->reason;

    auto fast = engine.Query(sql);
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    NaiveCandidateEvaluator naive(&rdb.db, &rdb.dirty);
    auto slow = naive.Evaluate(sql, /*max_candidates=*/1 << 12);
    ASSERT_TRUE(slow.ok()) << slow.status().ToString();

    ASSERT_EQ(fast->answers.size(), slow->answers.size());
    for (const CleanAnswer& a : slow->answers) {
      ASSERT_NEAR(fast->ProbabilityOf(a.row), a.probability, 1e-9);
    }
  }
}

// Independent invariant: the candidate probabilities always form a
// distribution (Dfn 4), regardless of the generated shape.
TEST_P(RewriteVsNaiveProperty, CandidateProbabilitiesSumToOne) {
  RandomDirtyDb rdb;
  BuildRandomDb(GetParam(), &rdb);
  NaiveCandidateEvaluator naive(&rdb.db, &rdb.dirty);
  auto probs = naive.CandidateProbabilities(rdb.tables, 1 << 12);
  ASSERT_TRUE(probs.ok()) << probs.status().ToString();
  double total = 0;
  for (double p : *probs) {
    ASSERT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

// Invariant: for the identity-style query "select id from root", each
// answer's probability is exactly 1 (the cluster always contributes one
// tuple, whatever it is).
TEST_P(RewriteVsNaiveProperty, RootIdentifierQueryIsCertain) {
  RandomDirtyDb rdb;
  BuildRandomDb(GetParam(), &rdb);
  CleanAnswerEngine engine(&rdb.db, &rdb.dirty);
  auto answers = engine.Query("select t0.id from t0");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  for (const CleanAnswer& a : answers->answers) {
    EXPECT_NEAR(a.probability, 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriteVsNaiveProperty,
                         ::testing::Range<uint64_t>(1, 33));

}  // namespace
}  // namespace conquer
