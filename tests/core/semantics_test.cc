// Tests of the clean-answer semantics (paper Section 2) via the naive
// candidate-enumeration oracle, pinned to the paper's worked examples.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/clean_engine.h"
#include "core/naive_eval.h"
#include "tests/core/paper_fixtures.h"

namespace conquer {
namespace {

class Figure1Test : public ::testing::Test {
 protected:
  void SetUp() override { LoadFigure1(&db_, &dirty_); }
  Database db_;
  DirtySchema dirty_;
};

// Paper Section 1: "card 111 has 60% probability of being associated with a
// customer earning over $100K".
TEST_F(Figure1Test, IntroLoyaltyCardCleanAnswer) {
  NaiveCandidateEvaluator naive(&db_, &dirty_);
  auto answers = naive.Evaluate(
      "select l.cardid from loyaltycard l, customer c "
      "where l.custfk = c.custid and c.income > 100000");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  ASSERT_EQ(answers->answers.size(), 1u);
  EXPECT_EQ(answers->answers[0].row[0].int_value(), 111);
  EXPECT_NEAR(answers->answers[0].probability, 0.6, 1e-12);
}

// The paper's eight possible databases for Figure 1: 2 x 2 x 2.
TEST_F(Figure1Test, IntroCandidateCount) {
  NaiveCandidateEvaluator naive(&db_, &dirty_);
  auto count = naive.CountCandidates(
      "select l.cardid from loyaltycard l, customer c "
      "where l.custfk = c.custid");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 8u);
}

// D1cd = {t1, s1, s3}: 0.4 * 0.9 * 0.4 = 0.144 (paper Section 1).
TEST_F(Figure1Test, IntroCandidateProbability) {
  NaiveCandidateEvaluator naive(&db_, &dirty_);
  auto probs = naive.CandidateProbabilities({"loyaltycard", "customer"});
  ASSERT_TRUE(probs.ok());
  ASSERT_EQ(probs->size(), 8u);
  double total = 0.0;
  for (double p : *probs) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NE(std::find_if(probs->begin(), probs->end(),
                         [](double p) { return std::abs(p - 0.144) < 1e-12; }),
            probs->end());
}

// Offline cleaning (keep the max-probability tuple per cluster) loses the
// answer entirely — the motivation for clean answers (paper Section 1).
TEST_F(Figure1Test, OfflineCleaningLosesTheAnswer) {
  OfflineCleaningBaseline baseline(&db_, &dirty_);
  auto rs = baseline.Query(
      "select l.cardid from loyaltycard l, customer c "
      "where l.custfk = c.custid and c.income > 100000");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->num_rows(), 0u);
}

TEST_F(Figure1Test, OfflineCleaningKeepsMaxProbabilityTuples) {
  OfflineCleaningBaseline baseline(&db_, &dirty_);
  auto cleaned = baseline.BuildCleanedDatabase();
  ASSERT_TRUE(cleaned.ok());
  auto card = (*cleaned)->GetTable("loyaltycard");
  ASSERT_TRUE(card.ok());
  ASSERT_EQ((*card)->num_rows(), 1u);
  EXPECT_EQ((*card)->row(0)[1].string_value(), "c2");  // prob 0.6 wins
  auto cust = (*cleaned)->GetTable("customer");
  ASSERT_TRUE(cust.ok());
  EXPECT_EQ((*cust)->num_rows(), 2u);  // one per cluster
}

// The rewriting agrees with the semantics on the intro example.
TEST_F(Figure1Test, RewritingMatchesIntroExample) {
  CleanAnswerEngine engine(&db_, &dirty_);
  auto answers = engine.Query(
      "select l.cardid from loyaltycard l, customer c "
      "where l.custfk = c.custid and c.income > 100000");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  ASSERT_EQ(answers->answers.size(), 1u);
  EXPECT_EQ(answers->answers[0].row[0].int_value(), 111);
  EXPECT_NEAR(answers->answers[0].probability, 0.6, 1e-12);
}

class Figure2Test : public ::testing::Test {
 protected:
  void SetUp() override { LoadFigure2(&db_, &dirty_); }
  Database db_;
  DirtySchema dirty_;
};

// Example 2: eight candidate databases.
TEST_F(Figure2Test, CandidateEnumerationCount) {
  NaiveCandidateEvaluator naive(&db_, &dirty_);
  auto count = naive.CountCandidates("select o.id from orders o, customer c");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 8u);
}

// Example 3: candidate probabilities {0.07, 0.28, 0.03, 0.12} each twice.
TEST_F(Figure2Test, CandidateEnumerationProbabilities) {
  NaiveCandidateEvaluator naive(&db_, &dirty_);
  auto probs = naive.CandidateProbabilities({"orders", "customer"});
  ASSERT_TRUE(probs.ok());
  ASSERT_EQ(probs->size(), 8u);
  std::vector<double> sorted = *probs;
  std::sort(sorted.begin(), sorted.end());
  const std::vector<double> expected = {0.03, 0.03, 0.07, 0.07,
                                        0.12, 0.12, 0.28, 0.28};
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(sorted[i], expected[i], 1e-12) << "at " << i;
  }
}

// Example 4 (q1): customers with balance > $10K -> {(c1, 1), (c2, 0.2)}.
TEST_F(Figure2Test, Example4SingleTableSelection) {
  NaiveCandidateEvaluator naive(&db_, &dirty_);
  auto answers =
      naive.Evaluate("select id from customer c where balance > 10000");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  ASSERT_EQ(answers->answers.size(), 2u);
  EXPECT_NEAR(answers->ProbabilityOf({Value::String("c1")}), 1.0, 1e-12);
  EXPECT_NEAR(answers->ProbabilityOf({Value::String("c2")}), 0.2, 1e-12);
}

// Example 6 (q2): orders and their customers with balance > $10K ->
// {(o1,c1,1), (o2,c1,0.5), (o2,c2,0.1)}.
TEST_F(Figure2Test, Example6ForeignKeyJoin) {
  NaiveCandidateEvaluator naive(&db_, &dirty_);
  auto answers = naive.Evaluate(
      "select o.id, c.id from orders o, customer c "
      "where o.cidfk = c.id and c.balance > 10000");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  ASSERT_EQ(answers->answers.size(), 3u);
  EXPECT_NEAR(
      answers->ProbabilityOf({Value::String("o1"), Value::String("c1")}), 1.0,
      1e-12);
  EXPECT_NEAR(
      answers->ProbabilityOf({Value::String("o2"), Value::String("c1")}), 0.5,
      1e-12);
  EXPECT_NEAR(
      answers->ProbabilityOf({Value::String("o2"), Value::String("c2")}), 0.1,
      1e-12);
}

// Example 7 (q3): the correct clean answers are {(c1, 0.3)}; c2 has
// probability zero.
TEST_F(Figure2Test, Example7CorrectSemantics) {
  NaiveCandidateEvaluator naive(&db_, &dirty_);
  auto answers = naive.Evaluate(
      "select c.id from orders o, customer c "
      "where o.quantity < 5 and o.cidfk = c.id and c.balance > 25000");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  ASSERT_EQ(answers->answers.size(), 1u);
  EXPECT_EQ(answers->answers[0].row[0].string_value(), "c1");
  EXPECT_NEAR(answers->answers[0].probability, 0.3, 1e-12);
  EXPECT_NEAR(answers->ProbabilityOf({Value::String("c2")}), 0.0, 1e-12);
}

// Example 7, second half: naive grouping+summing over-counts candidates
// D3cd/D4cd and reports 0.45 for c1 — which is why the query is outside the
// rewritable class. We reproduce the wrong value with a handwritten
// group-and-sum query.
TEST_F(Figure2Test, Example7GroupAndSumOvercounts) {
  auto rs = db_.Query(
      "select c.id, sum(o.prob * c.prob) from orders o, customer c "
      "where o.quantity < 5 and o.cidfk = c.id and c.balance > 25000 "
      "group by c.id");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_EQ(rs->rows[0][0].string_value(), "c1");
  EXPECT_NEAR(rs->rows[0][1].double_value(), 0.45, 1e-12);  // wrong answer
}

// Clean answers with probability 1 are exactly the consistent answers.
TEST_F(Figure2Test, ConsistentAnswersAreProbabilityOne) {
  NaiveCandidateEvaluator naive(&db_, &dirty_);
  auto answers =
      naive.Evaluate("select id from customer c where balance > 10000");
  ASSERT_TRUE(answers.ok());
  auto consistent = answers->ConsistentAnswers();
  ASSERT_EQ(consistent.size(), 1u);
  EXPECT_EQ(consistent[0][0].string_value(), "c1");
}

// The total probability mass of an answer can never exceed 1.
TEST_F(Figure2Test, AnswerProbabilitiesAreWithinUnitInterval) {
  NaiveCandidateEvaluator naive(&db_, &dirty_);
  auto answers = naive.Evaluate(
      "select o.id, c.id, o.quantity, c.balance from orders o, customer c "
      "where o.cidfk = c.id");
  ASSERT_TRUE(answers.ok());
  for (const CleanAnswer& a : answers->answers) {
    EXPECT_GE(a.probability, 0.0);
    EXPECT_LE(a.probability, 1.0 + 1e-12);
  }
}

TEST(ClampProbabilityTest, SnapsFloatingPointDriftToBounds) {
  EXPECT_EQ(ClampProbability(1.0000000000000002), 1.0);
  EXPECT_EQ(ClampProbability(1.0 - 1e-12), 1.0);
  EXPECT_EQ(ClampProbability(-1e-300), 0.0);
  EXPECT_EQ(ClampProbability(0.0), 0.0);
  EXPECT_EQ(ClampProbability(1.0), 1.0);
  EXPECT_DOUBLE_EQ(ClampProbability(0.6), 0.6);
  EXPECT_DOUBLE_EQ(ClampProbability(1e-8), 1e-8);  // outside epsilon: kept
}

// Regression: a full cluster whose tuple probabilities sum past 1.0 in
// floating point. 0.33 + 0.56 + 0.11 accumulated left-to-right in double is
// 1.0000000000000002; without the clamp the clean answer reported a
// probability > 1 and, depending on the consistency epsilon, arguably not a
// consistent answer. The insertion order matters — SeqScan feeds the
// rewriting's SUM in table order.
TEST(ProbabilityClampTest, OvershootingClusterSnapsToExactlyOne) {
  const double probs[] = {0.33, 0.56, 0.11};
  double sum = 0.0;
  for (double p : probs) sum += p;
  ASSERT_GT(sum, 1.0);  // the premise: this cluster overshoots in double

  Database db;
  DirtySchema dirty;
  TableSchema items("items", {{"id", DataType::kInt64},
                              {"name", DataType::kString},
                              {"prob", DataType::kDouble}});
  ASSERT_TRUE(db.CreateTable(items).ok());
  for (double p : probs) {
    ASSERT_TRUE(db.Insert("items", {Value::Int(7), Value::String("widget"),
                                    Value::Double(p)})
                    .ok());
  }
  ASSERT_TRUE(dirty.AddTable({"items", "id", "prob", {}}).ok());

  CleanAnswerEngine engine(&db, &dirty);
  auto answers = engine.Query("select i.id, i.name from items i");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  ASSERT_EQ(answers->answers.size(), 1u);
  EXPECT_EQ(answers->answers[0].probability, 1.0);  // exactly, post-clamp
  // A cluster that is certain to produce the answer is a consistent answer.
  auto consistent = answers->ConsistentAnswers();
  ASSERT_EQ(consistent.size(), 1u);
  EXPECT_EQ(consistent[0][1].string_value(), "widget");
}

// The candidate cap is honored.
TEST_F(Figure2Test, CandidateCapReportsResourceExhausted) {
  NaiveCandidateEvaluator naive(&db_, &dirty_);
  auto answers = naive.Evaluate("select id from customer c", /*max=*/3);
  EXPECT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace conquer
