// Tests of the aggregate-extension semantics (expected values over the
// candidate-database distribution) and answer classification.

#include "core/aggregates.h"

#include <gtest/gtest.h>

#include "core/naive_eval.h"
#include "sql/parser.h"
#include "tests/core/paper_fixtures.h"

namespace conquer {
namespace {

class AggregatesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LoadFigure2(&db_, &dirty_);
    engine_ = std::make_unique<CleanAggregateEngine>(&db_, &dirty_);
  }

  /// Ground truth by candidate enumeration: E[agg] = sum over candidates of
  /// P(c) * agg(q(c)).
  double NaiveExpectedValue(const std::string& spj_core, AggFunc func) {
    NaiveCandidateEvaluator naive(&db_, &dirty_);
    auto answers = naive.Evaluate(spj_core);
    EXPECT_TRUE(answers.ok()) << answers.status().ToString();
    double sum = 0, count = 0;
    for (const CleanAnswer& a : answers->answers) {
      count += a.probability;
      if (!a.row.back().is_null()) {
        sum += a.probability * a.row.back().AsDouble();
      }
    }
    if (func == AggFunc::kCount) return count;
    if (func == AggFunc::kAvg) return count > 0 ? sum / count : 0;
    return sum;
  }

  Database db_;
  DirtySchema dirty_;
  std::unique_ptr<CleanAggregateEngine> engine_;
};

TEST_F(AggregatesTest, ExpectedCountSingleTable) {
  // E[#customers with balance > 10000]: c1 contributes 1 (both duplicates
  // qualify), c2 contributes 0.2 (only Mary).
  auto r = engine_->ExpectedValue(
      "select count(*) from customer c where balance > 10000");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->func, AggFunc::kCount);
  EXPECT_NEAR(r->expected_value, 1.2, 1e-12);
  EXPECT_EQ(r->support, 2u);
}

TEST_F(AggregatesTest, ExpectedSumSingleTable) {
  // E[sum of balances]: c1: 0.7*20000 + 0.3*30000 = 23000;
  // c2: 0.2*27000 + 0.8*5000 = 9400. Total = 32400.
  auto r = engine_->ExpectedValue("select sum(balance) from customer c");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NEAR(r->expected_value, 32400.0, 1e-9);
}

TEST_F(AggregatesTest, ExpectedSumWithPredicate) {
  auto r = engine_->ExpectedValue(
      "select sum(balance) from customer c where balance > 10000");
  ASSERT_TRUE(r.ok());
  // c1: 23000 (always qualifies); c2: only Mary's 27000 at 0.2 -> 5400.
  EXPECT_NEAR(r->expected_value, 28400.0, 1e-9);
}

TEST_F(AggregatesTest, ExpectedCountOverJoin) {
  auto r = engine_->ExpectedValue(
      "select count(*) from orders o, customer c "
      "where o.cidfk = c.id and c.balance > 10000");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Answers (o1,c1)=1, (o2,c1)=.5, (o2,c2)=.1 -> E[count] = 1.6.
  EXPECT_NEAR(r->expected_value, 1.6, 1e-12);
}

TEST_F(AggregatesTest, ExpectedSumMatchesNaiveOracle) {
  auto fast = engine_->ExpectedValue(
      "select sum(o.quantity) from orders o, customer c "
      "where o.cidfk = c.id and c.balance > 10000");
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  double slow = NaiveExpectedValue(
      "select o.id, c.id, o.quantity as agg_arg from orders o, customer c "
      "where o.cidfk = c.id and c.balance > 10000",
      AggFunc::kSum);
  EXPECT_NEAR(fast->expected_value, slow, 1e-9);
}

TEST_F(AggregatesTest, AvgIsRatioOfExpectations) {
  auto r = engine_->ExpectedValue("select avg(balance) from customer c");
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->expected_value, 32400.0 / 2.0, 1e-9);
  EXPECT_NEAR(r->expected_count, 2.0, 1e-12);
}

TEST_F(AggregatesTest, CountColumnSkipsNulls) {
  ASSERT_TRUE(db_.Insert("customer", {Value::String("c3"), Value::String("m9"),
                                      Value::String("Nia"), Value::Null(),
                                      Value::Double(1.0)})
                  .ok());
  auto r = engine_->ExpectedValue("select count(balance) from customer c");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NEAR(r->expected_value, 2.0, 1e-12);  // c3's NULL not counted
}

TEST_F(AggregatesTest, CoreSqlProjectsAllIdentifiers) {
  auto core = engine_->CoreSql(
      "select sum(o.quantity) from orders o, customer c "
      "where o.cidfk = c.id");
  ASSERT_TRUE(core.ok());
  EXPECT_NE(core->find("o.id"), std::string::npos) << *core;
  EXPECT_NE(core->find("c.id"), std::string::npos) << *core;
  EXPECT_NE(core->find("AS agg_arg"), std::string::npos) << *core;
}

TEST_F(AggregatesTest, UnsupportedShapesAreRejected) {
  EXPECT_FALSE(engine_->ExpectedValue("select min(balance) from customer c")
                   .ok());
  EXPECT_FALSE(engine_->ExpectedValue("select max(balance) from customer c")
                   .ok());
  EXPECT_FALSE(engine_->ExpectedValue("select balance from customer c").ok());
  EXPECT_FALSE(engine_
                   ->ExpectedValue(
                       "select count(*), sum(balance) from customer c")
                   .ok());
  EXPECT_FALSE(engine_
                   ->ExpectedValue(
                       "select count(*) from customer c group by name")
                   .ok());
}

TEST_F(AggregatesTest, NonRewritableCoreIsReported) {
  // A cross product between two dirty tables has a disconnected join graph.
  auto r = engine_->ExpectedValue(
      "select count(*) from orders o, customer c");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotRewritable);
}

TEST(ClassifyAnswerTest, Bands) {
  EXPECT_EQ(ClassifyAnswer(1.0), AnswerCertainty::kConsistent);
  EXPECT_EQ(ClassifyAnswer(1.0 - 1e-12), AnswerCertainty::kConsistent);
  EXPECT_EQ(ClassifyAnswer(0.7), AnswerCertainty::kProbable);
  EXPECT_EQ(ClassifyAnswer(0.5), AnswerCertainty::kProbable);
  EXPECT_EQ(ClassifyAnswer(0.3), AnswerCertainty::kPossible);
  EXPECT_EQ(ClassifyAnswer(0.05), AnswerCertainty::kUnlikely);
}

TEST(ClassifyAnswerTest, CustomThresholds) {
  EXPECT_EQ(ClassifyAnswer(0.7, 0.9, 0.2), AnswerCertainty::kPossible);
  EXPECT_EQ(ClassifyAnswer(0.95, 0.9, 0.2), AnswerCertainty::kProbable);
  EXPECT_EQ(ClassifyAnswer(0.1, 0.9, 0.2), AnswerCertainty::kUnlikely);
}

TEST(ClassifyAnswerTest, Names) {
  EXPECT_STREQ(AnswerCertaintyToString(AnswerCertainty::kConsistent),
               "consistent");
  EXPECT_STREQ(AnswerCertaintyToString(AnswerCertainty::kUnlikely),
               "unlikely");
}

TEST_F(AggregatesTest, TopKAnswers) {
  CleanAnswerEngine engine(&db_, &dirty_);
  auto answers = engine.Query(
      "select o.id, c.id from orders o, customer c where o.cidfk = c.id");
  ASSERT_TRUE(answers.ok());
  auto top2 = answers->TopK(2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_GE(top2[0].probability, top2[1].probability);
  EXPECT_NEAR(top2[0].probability, 1.0, 1e-12);  // (o1, c1)
  auto top99 = answers->TopK(99);
  EXPECT_EQ(top99.size(), answers->answers.size());
}

}  // namespace
}  // namespace conquer
