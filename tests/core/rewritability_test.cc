// Tests of the rewritable-query class (paper Dfn 6-7) and the join graph.

#include <gtest/gtest.h>

#include "core/clean_engine.h"

#include "sql/parser.h"
#include "tests/core/paper_fixtures.h"

namespace conquer {
namespace {

class RewritabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LoadFigure2(&db_, &dirty_);
    engine_ = std::make_unique<CleanAnswerEngine>(&db_, &dirty_);
  }

  RewritabilityCheck Check(const std::string& sql) {
    auto check = engine_->Check(sql);
    EXPECT_TRUE(check.ok()) << check.status().ToString() << " for: " << sql;
    if (!check.ok()) return RewritabilityCheck{};
    return std::move(check).value();
  }

  Database db_;
  DirtySchema dirty_;
  std::unique_ptr<CleanAnswerEngine> engine_;
};

TEST_F(RewritabilityTest, PaperQ1IsRewritable) {
  auto check = Check("select id from customer c where balance > 10000");
  EXPECT_TRUE(check.rewritable) << check.reason;
}

TEST_F(RewritabilityTest, PaperQ2IsRewritable) {
  auto check = Check(
      "select o.id, c.id from orders o, customer c "
      "where o.cidfk = c.id and c.balance > 10000");
  ASSERT_TRUE(check.rewritable) << check.reason;
  // The root of the join tree is `orders` (FROM index 0).
  EXPECT_EQ(check.root_from_index, 0);
  ASSERT_EQ(check.graph.arcs.size(), 1u);
  EXPECT_EQ(check.graph.arcs[0].from, 0);  // orders -> customer
  EXPECT_EQ(check.graph.arcs[0].to, 1);
}

// Example 7 / Dfn 7 condition 4: root identifier missing from SELECT.
TEST_F(RewritabilityTest, PaperQ3ViolatesRootProjection) {
  auto check = Check(
      "select c.id from orders o, customer c "
      "where o.quantity < 5 and o.cidfk = c.id and c.balance > 25000");
  EXPECT_FALSE(check.rewritable);
  EXPECT_NE(check.reason.find("condition 4"), std::string::npos)
      << check.reason;
  // And RewriteClean refuses with kNotRewritable.
  auto rewritten = engine_->RewrittenSql(
      "select c.id from orders o, customer c "
      "where o.quantity < 5 and o.cidfk = c.id and c.balance > 25000");
  ASSERT_FALSE(rewritten.ok());
  EXPECT_EQ(rewritten.status().code(), StatusCode::kNotRewritable);
}

// Dfn 7 condition 1: joins on two non-identifier attributes.
TEST_F(RewritabilityTest, NonIdentifierJoinRejected) {
  auto check = Check(
      "select o.id, c.id from orders o, customer c "
      "where o.quantity = c.balance");
  EXPECT_FALSE(check.rewritable);
  EXPECT_NE(check.reason.find("non-identifier"), std::string::npos)
      << check.reason;
}

// Dfn 7 condition 3: self-joins.
TEST_F(RewritabilityTest, SelfJoinRejected) {
  auto check = Check(
      "select a.id, b.id from customer a, customer b where a.id = b.id");
  EXPECT_FALSE(check.rewritable);
  EXPECT_NE(check.reason.find("self-join"), std::string::npos) << check.reason;
}

// Dfn 7 condition 2: disconnected join graph (cartesian product).
TEST_F(RewritabilityTest, DisconnectedGraphRejected) {
  auto check = Check("select o.id, c.id from orders o, customer c");
  EXPECT_FALSE(check.rewritable);
  EXPECT_NE(check.reason.find("not connected"), std::string::npos)
      << check.reason;
}

// Dfn 7 condition 2: a relation with two parents is not a tree.
TEST_F(RewritabilityTest, TwoParentsRejected) {
  TableSchema wish("wishlist", {{"id", DataType::kString},
                                {"cidfk", DataType::kString},
                                {"prob", DataType::kDouble}});
  ASSERT_TRUE(db_.CreateTable(wish).ok());
  ASSERT_TRUE(db_.Insert("wishlist", {Value::String("w1"), Value::String("c1"),
                                      Value::Double(1.0)})
                  .ok());
  ASSERT_TRUE(
      dirty_.AddTable({"wishlist", "id", "prob", {{"cidfk", "customer"}}})
          .ok());
  // Both orders and wishlist point at customer: two in-arcs at customer, and
  // the two "roots" cannot both be covered by one identifier projection.
  auto check = Check(
      "select o.id, w.id, c.id from orders o, wishlist w, customer c "
      "where o.cidfk = c.id and w.cidfk = c.id");
  EXPECT_FALSE(check.rewritable);
  EXPECT_NE(check.reason.find("two parents"), std::string::npos)
      << check.reason;
}

// Non-equality join conditions are outside the class.
TEST_F(RewritabilityTest, ThetaJoinRejected) {
  auto check = Check(
      "select o.id, c.id from orders o, customer c where o.cidfk < c.id");
  EXPECT_FALSE(check.rewritable);
}

// Joins hidden inside OR are not simple equality joins.
TEST_F(RewritabilityTest, DisjunctiveJoinRejected) {
  auto check = Check(
      "select o.id, c.id from orders o, customer c "
      "where o.cidfk = c.id or o.quantity = 3");
  EXPECT_FALSE(check.rewritable);
}

// Aggregates / GROUP BY / DISTINCT / LIMIT make the input non-SPJ: that is
// an InvalidArgument, not merely non-rewritable.
TEST_F(RewritabilityTest, NonSpjQueriesAreInvalid) {
  auto c1 = engine_->Check("select sum(balance) from customer c");
  EXPECT_FALSE(c1.ok());
  auto c2 = engine_->Check("select id from customer c group by id");
  EXPECT_FALSE(c2.ok());
  auto c3 = engine_->Check("select distinct id from customer c");
  EXPECT_FALSE(c3.ok());
  auto c4 = engine_->Check("select id from customer c limit 3");
  EXPECT_FALSE(c4.ok());
}

// Queries over tables missing from the dirty schema are reported NotFound.
TEST_F(RewritabilityTest, UnregisteredTableReported) {
  TableSchema plain("plain", {{"x", DataType::kInt64}});
  ASSERT_TRUE(db_.CreateTable(plain).ok());
  auto check = engine_->Check("select x from plain p");
  EXPECT_FALSE(check.ok());
  EXPECT_EQ(check.status().code(), StatusCode::kNotFound);
}

// The join graph renders for diagnostics.
TEST_F(RewritabilityTest, JoinGraphToString) {
  auto check = Check(
      "select o.id, c.id from orders o, customer c where o.cidfk = c.id");
  ASSERT_TRUE(check.rewritable);
  auto stmt = Parser::Parse(
      "select o.id, c.id from orders o, customer c where o.cidfk = c.id");
  ASSERT_TRUE(stmt.ok());
  std::string graph = check.graph.ToString(**stmt);
  EXPECT_NE(graph.find("o -> c"), std::string::npos) << graph;
}

// Single-relation queries are trivially trees with the relation as root.
TEST_F(RewritabilityTest, SingleTableRootProjectionStillRequired) {
  auto check = Check("select name from customer c where balance > 10000");
  EXPECT_FALSE(check.rewritable);
  EXPECT_NE(check.reason.find("condition 4"), std::string::npos)
      << check.reason;
}

// Identifier-identifier joins unify the relations; either identifier
// projected satisfies condition 4.
TEST_F(RewritabilityTest, IdIdJoinEitherIdentifierServesAsRoot) {
  TableSchema vip("vip", {{"id", DataType::kString},
                          {"level", DataType::kString},
                          {"prob", DataType::kDouble}});
  ASSERT_TRUE(db_.CreateTable(vip).ok());
  ASSERT_TRUE(dirty_.AddTable({"vip", "id", "prob", {}}).ok());
  auto c1 = Check("select c.id from customer c, vip v where c.id = v.id");
  EXPECT_TRUE(c1.rewritable) << c1.reason;
  auto c2 = Check("select v.id from customer c, vip v where c.id = v.id");
  EXPECT_TRUE(c2.rewritable) << c2.reason;
  auto c3 = Check("select v.level from customer c, vip v where c.id = v.id");
  EXPECT_FALSE(c3.rewritable);
}

}  // namespace
}  // namespace conquer
