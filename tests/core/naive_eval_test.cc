// Edge-case tests for the candidate-enumeration oracle and the
// CleanAnswerSet utilities.

#include "core/naive_eval.h"

#include <gtest/gtest.h>

#include <limits>

#include "tests/core/paper_fixtures.h"

namespace conquer {
namespace {

class NaiveEvalTest : public ::testing::Test {
 protected:
  void SetUp() override { LoadFigure2(&db_, &dirty_); }
  Database db_;
  DirtySchema dirty_;
};

TEST_F(NaiveEvalTest, EmptyTableYieldsNoAnswers) {
  Database db;
  DirtySchema dirty;
  ASSERT_TRUE(db.CreateTable(TableSchema("e", {{"id", DataType::kString},
                                               {"prob", DataType::kDouble}}))
                  .ok());
  ASSERT_TRUE(dirty.AddTable({"e", "id", "prob", {}}).ok());
  NaiveCandidateEvaluator naive(&db, &dirty);
  auto answers = naive.Evaluate("select id from e");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  EXPECT_TRUE(answers->answers.empty());
  auto count = naive.CountCandidates("select id from e");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);  // the single empty candidate
}

TEST_F(NaiveEvalTest, ZeroProbabilityTuplesContributeNothing) {
  Database db;
  DirtySchema dirty;
  ASSERT_TRUE(db.CreateTable(TableSchema("t", {{"id", DataType::kString},
                                               {"x", DataType::kInt64},
                                               {"prob", DataType::kDouble}}))
                  .ok());
  ASSERT_TRUE(db.Insert("t", {Value::String("a"), Value::Int(1),
                              Value::Double(1.0)})
                  .ok());
  ASSERT_TRUE(db.Insert("t", {Value::String("a"), Value::Int(2),
                              Value::Double(0.0)})
                  .ok());
  ASSERT_TRUE(dirty.AddTable({"t", "id", "prob", {}}).ok());
  NaiveCandidateEvaluator naive(&db, &dirty);
  auto answers = naive.Evaluate("select id, x from t");
  ASSERT_TRUE(answers.ok());
  EXPECT_NEAR(answers->ProbabilityOf({Value::String("a"), Value::Int(1)}),
              1.0, 1e-12);
  EXPECT_NEAR(answers->ProbabilityOf({Value::String("a"), Value::Int(2)}),
              0.0, 1e-12);
}

TEST_F(NaiveEvalTest, OrderByAndLimitAreIgnoredForSemantics) {
  NaiveCandidateEvaluator naive(&db_, &dirty_);
  auto plain = naive.Evaluate("select id from customer c");
  auto ordered = naive.Evaluate(
      "select id from customer c order by balance desc limit 1");
  ASSERT_TRUE(plain.ok() && ordered.ok());
  EXPECT_EQ(plain->answers.size(), ordered->answers.size());
}

TEST_F(NaiveEvalTest, SetSemanticsCollapseDuplicateAnswerRows) {
  // Projecting only the name yields "John" once per candidate even though
  // both c1 duplicates are named John.
  NaiveCandidateEvaluator naive(&db_, &dirty_);
  auto answers = naive.Evaluate("select name from customer c");
  ASSERT_TRUE(answers.ok());
  EXPECT_NEAR(answers->ProbabilityOf({Value::String("John")}), 1.0, 1e-12);
}

TEST_F(NaiveEvalTest, TableListedTwiceInFromCountsOnce) {
  NaiveCandidateEvaluator naive(&db_, &dirty_);
  auto count = naive.CountCandidates(
      "select a.id from customer a, customer b where a.id = b.id");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 4u);  // customer's clusters enumerate once: 2 x 2
}

TEST_F(NaiveEvalTest, UnregisteredTableIsReported) {
  ASSERT_TRUE(
      db_.CreateTable(TableSchema("plain", {{"x", DataType::kInt64}})).ok());
  NaiveCandidateEvaluator naive(&db_, &dirty_);
  auto answers = naive.Evaluate("select x from plain p");
  ASSERT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(), StatusCode::kNotFound);
}

TEST_F(NaiveEvalTest, CandidateProbabilitiesHonorCap) {
  NaiveCandidateEvaluator naive(&db_, &dirty_);
  auto probs = naive.CandidateProbabilities({"orders", "customer"}, 4);
  EXPECT_FALSE(probs.ok());
  EXPECT_EQ(probs.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(NaiveEvalTest, EvaluateHonorsCap) {
  // customer has two clusters of two duplicates each (4 candidates), so a
  // cap of 3 must be a hard error, never a silent truncation.
  NaiveCandidateEvaluator naive(&db_, &dirty_);
  auto answers = naive.Evaluate("select id from customer c",
                                /*max_candidates=*/3);
  ASSERT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(), StatusCode::kResourceExhausted);
}

// A table with 64 clusters of two duplicates induces 2^64 candidates —
// enough to wrap the uint64_t running product back to zero. Every capped
// entry point must report ResourceExhausted instead of wrapping (a wrapped
// product of 0 would sail under any cap and start enumerating).
class NaiveEvalOverflowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        db_.CreateTable(TableSchema("big", {{"id", DataType::kString},
                                            {"prob", DataType::kDouble}}))
            .ok());
    ASSERT_TRUE(dirty_.AddTable({"big", "id", "prob", {}}).ok());
    for (int e = 0; e < 64; ++e) {
      for (int j = 0; j < 2; ++j) {
        ASSERT_TRUE(db_.Insert("big", {Value::String("e" + std::to_string(e)),
                                       Value::Double(0.5)})
                        .ok());
      }
    }
  }
  Database db_;
  DirtySchema dirty_;
};

TEST_F(NaiveEvalOverflowTest, CountCandidatesReportsOverflow) {
  NaiveCandidateEvaluator naive(&db_, &dirty_);
  auto count = naive.CountCandidates("select id from big");
  ASSERT_FALSE(count.ok());
  EXPECT_EQ(count.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(NaiveEvalOverflowTest, EvaluateCapSurvivesProductOverflow) {
  NaiveCandidateEvaluator naive(&db_, &dirty_);
  auto answers = naive.Evaluate(
      "select id from big", std::numeric_limits<uint64_t>::max());
  ASSERT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(NaiveEvalOverflowTest, CandidateProbabilitiesCapSurvivesOverflow) {
  NaiveCandidateEvaluator naive(&db_, &dirty_);
  auto probs = naive.CandidateProbabilities(
      {"big"}, std::numeric_limits<uint64_t>::max());
  ASSERT_FALSE(probs.ok());
  EXPECT_EQ(probs.status().code(), StatusCode::kResourceExhausted);
}

TEST(CleanAnswerSetTest, ToStringIncludesProbabilityColumn) {
  CleanAnswerSet set;
  set.column_names = {"id"};
  set.answers.push_back({{Value::String("a")}, 0.25});
  std::string text = set.ToString();
  EXPECT_NE(text.find("probability"), std::string::npos);
  EXPECT_NE(text.find("0.25"), std::string::npos);
}

TEST(CleanAnswerSetTest, ProbabilityOfMissingRowIsZero) {
  CleanAnswerSet set;
  set.column_names = {"id"};
  set.answers.push_back({{Value::String("a")}, 0.5});
  EXPECT_EQ(set.ProbabilityOf({Value::String("b")}), 0.0);
  EXPECT_EQ(set.ProbabilityOf({Value::String("a"), Value::Int(1)}), 0.0);
}

TEST(CleanAnswerSetTest, SortIsStableOnTies) {
  CleanAnswerSet set;
  set.column_names = {"id"};
  set.answers.push_back({{Value::String("first")}, 0.5});
  set.answers.push_back({{Value::String("second")}, 0.5});
  set.answers.push_back({{Value::String("top")}, 0.9});
  set.SortByProbabilityDesc();
  EXPECT_EQ(set.answers[0].row[0].string_value(), "top");
  EXPECT_EQ(set.answers[1].row[0].string_value(), "first");
  EXPECT_EQ(set.answers[2].row[0].string_value(), "second");
}

TEST(CleanAnswerSetTest, ConsistentAnswersUseEpsilon) {
  CleanAnswerSet set;
  set.column_names = {"id"};
  set.answers.push_back({{Value::String("a")}, 1.0 - 1e-12});
  set.answers.push_back({{Value::String("b")}, 0.999});
  EXPECT_EQ(set.ConsistentAnswers().size(), 1u);
  EXPECT_EQ(set.ConsistentAnswers(0.01).size(), 2u);
}

}  // namespace
}  // namespace conquer
