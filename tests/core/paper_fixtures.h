#ifndef CONQUER_TESTS_CORE_PAPER_FIXTURES_H_
#define CONQUER_TESTS_CORE_PAPER_FIXTURES_H_

#include <gtest/gtest.h>

#include "core/dirty_schema.h"
#include "engine/database.h"

namespace conquer {

/// Loads the paper's Figure 1 database (loyaltycard / customer with incomes).
inline void LoadFigure1(Database* db, DirtySchema* dirty) {
  TableSchema loyaltycard("loyaltycard", {{"cardid", DataType::kInt64},
                                          {"custfk", DataType::kString},
                                          {"prob", DataType::kDouble}});
  ASSERT_TRUE(db->CreateTable(loyaltycard).ok());
  ASSERT_TRUE(db->Insert("loyaltycard", {Value::Int(111), Value::String("c1"),
                                         Value::Double(0.4)})
                  .ok());
  ASSERT_TRUE(db->Insert("loyaltycard", {Value::Int(111), Value::String("c2"),
                                         Value::Double(0.6)})
                  .ok());

  TableSchema customer("customer", {{"custid", DataType::kString},
                                    {"name", DataType::kString},
                                    {"income", DataType::kInt64},
                                    {"prob", DataType::kDouble}});
  ASSERT_TRUE(db->CreateTable(customer).ok());
  auto ins = [&](const char* id, const char* name, int64_t income, double p) {
    ASSERT_TRUE(db->Insert("customer", {Value::String(id), Value::String(name),
                                        Value::Int(income), Value::Double(p)})
                    .ok());
  };
  ins("c1", "John", 120000, 0.9);
  ins("c1", "John", 80000, 0.1);
  ins("c2", "Mary", 140000, 0.4);
  ins("c2", "Marion", 40000, 0.6);

  ASSERT_TRUE(dirty
                  ->AddTable({"loyaltycard",
                              "cardid",
                              "prob",
                              {{"custfk", "customer"}}})
                  .ok());
  ASSERT_TRUE(dirty->AddTable({"customer", "custid", "prob", {}}).ok());
}

/// Loads the paper's Figure 2 database (orders / customer with balances).
/// "order" is a keyword-free table name; the paper calls it `order`.
inline void LoadFigure2(Database* db, DirtySchema* dirty) {
  TableSchema orders("orders", {{"id", DataType::kString},
                                {"orderid", DataType::kString},
                                {"cidfk", DataType::kString},
                                {"quantity", DataType::kInt64},
                                {"prob", DataType::kDouble}});
  ASSERT_TRUE(db->CreateTable(orders).ok());
  auto ord = [&](const char* id, const char* oid, const char* cid, int64_t q,
                 double p) {
    ASSERT_TRUE(db->Insert("orders",
                           {Value::String(id), Value::String(oid),
                            Value::String(cid), Value::Int(q),
                            Value::Double(p)})
                    .ok());
  };
  ord("o1", "11", "c1", 3, 1.0);  // t1
  ord("o2", "12", "c1", 2, 0.5);  // t2
  ord("o2", "13", "c2", 5, 0.5);  // t3

  TableSchema customer("customer", {{"id", DataType::kString},
                                    {"custid", DataType::kString},
                                    {"name", DataType::kString},
                                    {"balance", DataType::kInt64},
                                    {"prob", DataType::kDouble}});
  ASSERT_TRUE(db->CreateTable(customer).ok());
  auto cust = [&](const char* id, const char* key, const char* name,
                  int64_t balance, double p) {
    ASSERT_TRUE(db->Insert("customer",
                           {Value::String(id), Value::String(key),
                            Value::String(name), Value::Int(balance),
                            Value::Double(p)})
                    .ok());
  };
  cust("c1", "m1", "John", 20000, 0.7);   // t4
  cust("c1", "m2", "John", 30000, 0.3);   // t5
  cust("c2", "m3", "Mary", 27000, 0.2);   // t6
  cust("c2", "m4", "Marion", 5000, 0.8);  // t7

  ASSERT_TRUE(
      dirty->AddTable({"orders", "id", "prob", {{"cidfk", "customer"}}}).ok());
  ASSERT_TRUE(dirty->AddTable({"customer", "id", "prob", {}}).ok());
}

}  // namespace conquer

#endif  // CONQUER_TESTS_CORE_PAPER_FIXTURES_H_
