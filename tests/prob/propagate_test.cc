// Tests of identifier propagation (paper Section 2.1 / Section 5.3).

#include "prob/propagate.h"

#include <gtest/gtest.h>

namespace conquer {
namespace {

class PropagateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Dirty customer table: record keys k1..k4, two clusters c1, c2.
    TableSchema customer("customer", {{"id", DataType::kString},
                                      {"custkey", DataType::kInt64},
                                      {"name", DataType::kString},
                                      {"prob", DataType::kDouble}});
    ASSERT_TRUE(db_.CreateTable(customer).ok());
    auto cust = [&](const char* id, int64_t key, const char* name) {
      ASSERT_TRUE(db_.Insert("customer",
                             {Value::String(id), Value::Int(key),
                              Value::String(name), Value::Double(0.5)})
                      .ok());
    };
    cust("c1", 101, "John");
    cust("c1", 102, "Jon");
    cust("c2", 201, "Mary");
    cust("c2", 202, "Marion");

    // Orders reference record keys; cid target column starts NULL.
    TableSchema orders("orders", {{"id", DataType::kString},
                                  {"custfk", DataType::kInt64},
                                  {"cidfk", DataType::kString},
                                  {"prob", DataType::kDouble}});
    ASSERT_TRUE(db_.CreateTable(orders).ok());
    auto ord = [&](const char* id, int64_t fk) {
      ASSERT_TRUE(db_.Insert("orders", {Value::String(id), Value::Int(fk),
                                        Value::Null(), Value::Double(1.0)})
                      .ok());
    };
    ord("o1", 101);
    ord("o2", 102);
    ord("o3", 202);
    ord("o4", 999);  // dangling

    ASSERT_TRUE(dirty_.AddTable({"customer", "id", "prob", {}}).ok());
    ASSERT_TRUE(
        dirty_.AddTable({"orders", "id", "prob", {{"cidfk", "customer"}}})
            .ok());
  }

  Database db_;
  DirtySchema dirty_;
};

TEST_F(PropagateTest, RewritesForeignKeysToClusterIdentifiers) {
  auto stats = PropagateIdentifiers(
      &db_, dirty_,
      {{"orders", "custfk", "cidfk", "customer", "custkey"}});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rows_updated, 3u);
  EXPECT_EQ(stats->dangling_references, 1u);

  auto orders = db_.GetTable("orders");
  ASSERT_TRUE(orders.ok());
  EXPECT_EQ((*orders)->row(0)[2].string_value(), "c1");
  EXPECT_EQ((*orders)->row(1)[2].string_value(), "c1");
  EXPECT_EQ((*orders)->row(2)[2].string_value(), "c2");
  EXPECT_TRUE((*orders)->row(3)[2].is_null());
}

TEST_F(PropagateTest, PropagatedJoinsFindAllDuplicates) {
  ASSERT_TRUE(PropagateIdentifiers(
                  &db_, dirty_,
                  {{"orders", "custfk", "cidfk", "customer", "custkey"}})
                  .ok());
  // Joining on the propagated identifier reaches every duplicate of the
  // referenced entity; joining on the record key reaches only one.
  auto by_id = db_.Query(
      "select o.id, c.name from orders o, customer c where o.cidfk = c.id");
  ASSERT_TRUE(by_id.ok());
  EXPECT_EQ(by_id->num_rows(), 6u);  // o1,o2 x {John,Jon}; o3 x {Mary,Marion}
  auto by_key = db_.Query(
      "select o.id, c.name from orders o, customer c "
      "where o.custfk = c.custkey");
  ASSERT_TRUE(by_key.ok());
  EXPECT_EQ(by_key->num_rows(), 3u);
}

TEST_F(PropagateTest, UnknownColumnsAreReported) {
  auto stats = PropagateIdentifiers(
      &db_, dirty_, {{"orders", "nosuch", "cidfk", "customer", "custkey"}});
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kNotFound);
}

TEST_F(PropagateTest, EmptySpecListIsNoOp) {
  auto stats = PropagateIdentifiers(&db_, dirty_, {});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows_updated, 0u);
}

}  // namespace
}  // namespace conquer
