// Unit tests for the categorical representation, DCF summaries, and the
// information-loss distance (paper Section 4.1).

#include "prob/dcf.h"

#include <gtest/gtest.h>

#include <cmath>

namespace conquer {
namespace {

TEST(ValueSpaceTest, AttributeQualification) {
  // "identical values from different attributes are treated as distinct"
  ValueSpace space;
  uint32_t a = space.Intern(0, Value::String("Mary"));
  uint32_t b = space.Intern(1, Value::String("Mary"));
  uint32_t c = space.Intern(0, Value::String("Mary"));
  EXPECT_NE(a, b);
  EXPECT_EQ(a, c);
  EXPECT_EQ(space.size(), 2u);
}

TEST(ValueSpaceTest, FindReturnsMinusOneForUnknown) {
  ValueSpace space;
  space.Intern(0, Value::String("x"));
  EXPECT_EQ(space.Find(0, Value::String("x")), 0);
  EXPECT_EQ(space.Find(0, Value::String("y")), -1);
  EXPECT_EQ(space.Find(1, Value::String("x")), -1);
}

TEST(SparseDistTest, TupleDistributionIsUniformOverItsValues) {
  SparseDist d = SparseDist::FromIndices({3, 7, 1, 9});
  EXPECT_NEAR(d.At(1), 0.25, 1e-12);
  EXPECT_NEAR(d.At(3), 0.25, 1e-12);
  EXPECT_NEAR(d.At(5), 0.0, 1e-12);
  EXPECT_NEAR(d.Mass(), 1.0, 1e-12);
}

TEST(SparseDistTest, RepeatedIndicesAccumulate) {
  SparseDist d = SparseDist::FromIndices({2, 2, 5, 8});
  EXPECT_NEAR(d.At(2), 0.5, 1e-12);
  EXPECT_NEAR(d.Mass(), 1.0, 1e-12);
}

TEST(SparseDistTest, MixIsWeightedAverage) {
  SparseDist a = SparseDist::FromIndices({0, 1});
  SparseDist b = SparseDist::FromIndices({1, 2});
  SparseDist m = SparseDist::Mix(a, 0.5, b, 0.5);
  EXPECT_NEAR(m.At(0), 0.25, 1e-12);
  EXPECT_NEAR(m.At(1), 0.5, 1e-12);
  EXPECT_NEAR(m.At(2), 0.25, 1e-12);
  EXPECT_NEAR(m.Mass(), 1.0, 1e-12);
}

TEST(DcfTest, MergeFollowsPaperEquations) {
  // |c*| = |c1| + |c2|; p(v|c*) = weighted average.
  Dcf c1 = Dcf::ForTuple({0, 1});
  Dcf c2 = Dcf::ForTuple({1, 2});
  Dcf c3 = Dcf::ForTuple({2, 3});
  Dcf merged = Dcf::Merge(Dcf::Merge(c1, c2), c3);
  EXPECT_NEAR(merged.weight, 3.0, 1e-12);
  EXPECT_NEAR(merged.dist.At(0), 0.5 / 3, 1e-12);
  EXPECT_NEAR(merged.dist.At(1), 1.0 / 3, 1e-12);
  EXPECT_NEAR(merged.dist.At(2), 1.0 / 3, 1e-12);
  EXPECT_NEAR(merged.dist.At(3), 0.5 / 3, 1e-12);
  EXPECT_NEAR(merged.dist.Mass(), 1.0, 1e-12);
}

TEST(DcfTest, MergeIsCommutativeAndAssociativeInDistribution) {
  Dcf a = Dcf::ForTuple({0, 1, 2});
  Dcf b = Dcf::ForTuple({2, 3, 4});
  Dcf c = Dcf::ForTuple({4, 5, 0});
  Dcf ab_c = Dcf::Merge(Dcf::Merge(a, b), c);
  Dcf a_bc = Dcf::Merge(a, Dcf::Merge(b, c));
  ASSERT_NEAR(ab_c.weight, a_bc.weight, 1e-12);
  for (uint32_t v = 0; v <= 5; ++v) {
    EXPECT_NEAR(ab_c.dist.At(v), a_bc.dist.At(v), 1e-12) << "value " << v;
  }
}

TEST(DistanceTest, IdenticalDistributionsHaveZeroDistance) {
  Dcf a = Dcf::ForTuple({0, 1, 2});
  Dcf b = Dcf::ForTuple({0, 1, 2});
  EXPECT_NEAR(InformationLossDistance(a, b, 10.0), 0.0, 1e-12);
}

TEST(DistanceTest, DisjointDistributionsMaximizeDivergence) {
  // JS divergence of disjoint distributions is 1 bit; the distance scales it
  // by (n1+n2)/N = 2/2 = 1.
  Dcf a = Dcf::ForTuple({0, 1});
  Dcf b = Dcf::ForTuple({2, 3});
  EXPECT_NEAR(InformationLossDistance(a, b, 2.0), 1.0, 1e-12);
}

TEST(DistanceTest, SymmetricAndNonNegative) {
  Dcf a = Dcf::ForTuple({0, 1, 2, 3});
  Dcf b = Dcf::ForTuple({2, 3, 4, 5});
  double dab = InformationLossDistance(a, b, 6.0);
  double dba = InformationLossDistance(b, a, 6.0);
  EXPECT_NEAR(dab, dba, 1e-12);
  EXPECT_GT(dab, 0.0);
}

TEST(DistanceTest, ScalesInverselyWithEnsembleSize) {
  Dcf a = Dcf::ForTuple({0, 1});
  Dcf b = Dcf::ForTuple({1, 2});
  double d_small = InformationLossDistance(a, b, 4.0);
  double d_large = InformationLossDistance(a, b, 8.0);
  EXPECT_NEAR(d_small, 2.0 * d_large, 1e-12);
}

// The central identity: d(s1, s2) computed via weighted JS divergence equals
// the direct mutual-information difference I(C;V) - I(C';V) where C' merges
// s1 and s2 within the partition (paper Section 4.1.3).
TEST(DistanceTest, EqualsMutualInformationLoss) {
  std::vector<Dcf> clusters = {
      Dcf::Merge(Dcf::ForTuple({0, 1, 2}), Dcf::ForTuple({0, 1, 3})),
      Dcf::ForTuple({2, 3, 4}),
      Dcf::Merge(Dcf::ForTuple({4, 5, 6}), Dcf::ForTuple({5, 6, 7})),
  };
  double n = 0.0;
  for (const Dcf& c : clusters) n += c.weight;

  for (size_t i = 0; i < clusters.size(); ++i) {
    for (size_t j = i + 1; j < clusters.size(); ++j) {
      std::vector<Dcf> merged;
      for (size_t k = 0; k < clusters.size(); ++k) {
        if (k != i && k != j) merged.push_back(clusters[k]);
      }
      merged.push_back(Dcf::Merge(clusters[i], clusters[j]));
      double direct = MutualInformation(clusters, n) -
                      MutualInformation(merged, n);
      double shortcut = InformationLossDistance(clusters[i], clusters[j], n);
      EXPECT_NEAR(direct, shortcut, 1e-10)
          << "merging clusters " << i << " and " << j;
    }
  }
}

TEST(MutualInformationTest, SingleClusterCarriesNoInformation) {
  std::vector<Dcf> one = {
      Dcf::Merge(Dcf::ForTuple({0, 1}), Dcf::ForTuple({2, 3}))};
  EXPECT_NEAR(MutualInformation(one, 2.0), 0.0, 1e-12);
}

TEST(MutualInformationTest, DistinctSingletonsCarryFullEntropy) {
  // Two singleton clusters with disjoint values: I(C;V) = H(C) = 1 bit.
  std::vector<Dcf> two = {Dcf::ForTuple({0, 1}), Dcf::ForTuple({2, 3})};
  EXPECT_NEAR(MutualInformation(two, 2.0), 1.0, 1e-12);
}

}  // namespace
}  // namespace conquer
