// Property tests for incremental probability maintenance: after any
// sequence of SQL writes through Database::ExecuteWrite, every visible
// cluster's probabilities sum to 1 (within 1e-12) and clusters a write did
// not touch keep bit-identical probabilities. The direct ReassignClusters
// tests cover NULL-identifier matching, fully-deleted clusters, and the
// injected off-by-one fault the fuzzer's self-test relies on.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/database.h"
#include "prob/incremental.h"
#include "storage/table.h"
#include "types/value.h"

namespace conquer {
namespace {

constexpr const char* kWords[] = {"ann", "bob", "cid", "oslo", "rome", "lima"};

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Per-cluster visible probabilities at the table's committed version, in
/// row-position order, keyed by the identifier's display form.
std::map<std::string, std::vector<double>> VisibleClusterProbs(
    const Table& t, size_t id_col, size_t prob_col) {
  std::map<std::string, std::vector<double>> out;
  for (size_t pos : t.VisibleRowPositions(t.committed_version())) {
    Value id = t.ValueAt(pos, id_col);
    if (id.is_null()) continue;
    out[id.ToString()].push_back(t.ValueAt(pos, prob_col).AsDouble());
  }
  return out;
}

// ---------------------------------------------------------------------------
// End-to-end: write sequences through Database::ExecuteWrite with the
// maintenance hook installed.
// ---------------------------------------------------------------------------

class IncrementalWriteTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    TableSchema people("people", {{"id", DataType::kString},
                                  {"name", DataType::kString},
                                  {"city", DataType::kString},
                                  {"prob", DataType::kDouble}});
    ASSERT_TRUE(db_.CreateTable(people).ok());
    ASSERT_TRUE(dirty_.AddTable({"people", "id", "prob", {}}).ok());
    ASSERT_TRUE(InstallIncrementalMaintenance(&db_, &dirty_).ok());

    // Three multi-member clusters (uniform, normalized) plus a singleton.
    // Attribute values are deterministic and distinct within each cluster,
    // so a DELETE on (id, name, city) hits exactly one row.
    std::vector<Row> rows;
    for (int k = 0; k < 3; ++k) {
      int members = 2 + k;  // sizes 2, 3, 4
      for (int m = 0; m < members; ++m) {
        rows.push_back({Value::String("c" + std::to_string(k)),
                        Value::String(kWords[m % 3]),
                        Value::String(kWords[3 + (m + k) % 3]),
                        Value::Double(1.0 / members)});
      }
    }
    rows.push_back({Value::String("c3"), Value::String("cid"),
                    Value::String("lima"), Value::Double(1.0)});
    ASSERT_TRUE(db_.InsertMany("people", std::move(rows)).ok());
    ASSERT_TRUE(db_.Analyze("people").ok());
  }

  std::string RandomWrite(Rng* rng) {
    std::string id = "c" + std::to_string(rng->Uniform(0, 3));
    auto word = [&] { return std::string(kWords[rng->Uniform(0, 5)]); };
    switch (rng->Uniform(0, 2)) {
      case 0:
        return "insert into people values ('" + id + "', '" + word() +
               "', '" + word() + "', 0.5)";
      case 1:
        return "update people set city = '" + word() + "' where id = '" +
               id + "'";
      default:
        return "delete from people where id = '" + id + "' and name = '" +
               word() + "'";
    }
  }

  Database db_;
  DirtySchema dirty_;  // must outlive the hooks installed on db_
};

TEST_P(IncrementalWriteTest, WriteSequencesKeepEveryClusterNormalized) {
  auto table = db_.GetTable("people");
  ASSERT_TRUE(table.ok());
  Rng rng(GetParam());
  for (int step = 0; step < 12; ++step) {
    auto before = VisibleClusterProbs(**table, 0, 3);
    std::vector<Value> touched;
    std::string sql = RandomWrite(&rng);
    auto rs = db_.ExecuteWrite(sql, &touched);
    ASSERT_TRUE(rs.ok()) << rs.status().ToString() << " for: " << sql;

    auto after = VisibleClusterProbs(**table, 0, 3);
    std::map<std::string, bool> was_touched;
    for (const Value& id : touched) {
      if (!id.is_null()) was_touched[id.ToString()] = true;
    }
    for (const auto& [id, probs] : after) {
      // Dfn 2 invariant: every visible cluster stays normalized.
      double sum = 0;
      for (double p : probs) sum += p;
      EXPECT_NEAR(sum, 1.0, 1e-12)
          << "cluster " << id << " after step " << step << ": " << sql;
      // Untouched clusters must be bitwise stable — incremental
      // maintenance may not perturb probabilities it had no reason to
      // recompute.
      if (was_touched.count(id) != 0) continue;
      auto it = before.find(id);
      ASSERT_NE(it, before.end()) << "cluster " << id << " appeared without "
                                  << "being touched by: " << sql;
      ASSERT_EQ(it->second.size(), probs.size()) << "cluster " << id;
      for (size_t i = 0; i < probs.size(); ++i) {
        EXPECT_TRUE(SameBits(it->second[i], probs[i]))
            << "cluster " << id << " member " << i << " drifted from "
            << it->second[i] << " to " << probs[i] << " under: " << sql;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalWriteTest,
                         ::testing::Range<uint64_t>(1, 13));

TEST_F(IncrementalWriteTest, DeleteLeavingSingletonMakesItCertain) {
  // c0 has two members; delete one by its attribute value.
  auto table = db_.GetTable("people");
  ASSERT_TRUE(table.ok());
  Row victim = (*table)->row(0);
  std::string sql = "delete from people where id = 'c0' and name = " +
                    victim[1].ToSqlLiteral() + " and city = " +
                    victim[2].ToSqlLiteral();
  auto rs = db_.ExecuteWrite(sql);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->rows[0][0].int_value(), 1);

  auto probs = VisibleClusterProbs(**table, 0, 3);
  ASSERT_EQ(probs["c0"].size(), 1u);
  EXPECT_EQ(probs["c0"][0], 1.0);
}

TEST_F(IncrementalWriteTest, InsertIntoClusterRedistributesItsMass) {
  auto table = db_.GetTable("people");
  ASSERT_TRUE(table.ok());
  // The new member's deliberately wrong literal probability (0.5) must be
  // overwritten by renormalization, not trusted.
  auto rs = db_.ExecuteWrite(
      "insert into people values ('c1', 'ann', 'oslo', 0.5)");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();

  auto probs = VisibleClusterProbs(**table, 0, 3);
  ASSERT_EQ(probs["c1"].size(), 4u);
  double sum = 0;
  for (double p : probs["c1"]) {
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, 1.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Direct ReassignClusters unit tests.
// ---------------------------------------------------------------------------

const DirtyTableInfo kInfo{"t", "id", "prob", {}};

std::unique_ptr<Table> TwoClusterTable() {
  auto table = std::make_unique<Table>(
      TableSchema("t", {{"id", DataType::kString},
                        {"a", DataType::kString},
                        {"b", DataType::kString},
                        {"prob", DataType::kDouble}}));
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(table
                    ->Insert({Value::String("c0"), Value::String("ann"),
                              Value::String("oslo"), Value::Double(0.5)})
                    .ok());
  }
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(table
                    ->Insert({Value::String("c1"), Value::String("bob"),
                              Value::String("rome"), Value::Double(0.5)})
                    .ok());
  }
  return table;
}

TEST(ReassignClustersTest, NullIdentifierInsertJoinsNearestCluster) {
  auto table = TwoClusterTable();
  uint64_t v = table->BeginWrite();
  ASSERT_TRUE(table
                  ->InsertVersioned({Value::Null(), Value::String("ann"),
                                     Value::String("oslo"),
                                     Value::Double(0.5)},
                                    v)
                  .ok());
  table->CommitWrite(v);

  auto n = ReassignClusters(table.get(), kInfo, {Value::Null()}, v);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  // The new row duplicates c0 exactly, so it must join c0 (distance 0) and
  // c0 must be renormalized over its three members.
  EXPECT_EQ(table->ValueAt(4, 0).ToString(), "c0");
  auto probs = VisibleClusterProbs(*table, 0, 3);
  ASSERT_EQ(probs["c0"].size(), 3u);
  double sum = 0;
  for (double p : probs["c0"]) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // c1 was never touched: still exactly 0.5 / 0.5.
  ASSERT_EQ(probs["c1"].size(), 2u);
  EXPECT_TRUE(SameBits(probs["c1"][0], 0.5));
  EXPECT_TRUE(SameBits(probs["c1"][1], 0.5));
}

TEST(ReassignClustersTest, NullIdentifierOutlierFoundsSingletonCluster) {
  auto table = TwoClusterTable();
  uint64_t v = table->BeginWrite();
  ASSERT_TRUE(table
                  ->InsertVersioned({Value::Null(), Value::String("zephyr"),
                                     Value::String("quux"),
                                     Value::Double(0.5)},
                                    v)
                  .ok());
  table->CommitWrite(v);

  auto n = ReassignClusters(table.get(), kInfo, {Value::Null()}, v);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  Value id = table->ValueAt(4, 0);
  ASSERT_FALSE(id.is_null());
  EXPECT_NE(id.ToString(), "c0");
  EXPECT_NE(id.ToString(), "c1");
  // A fresh singleton is certain.
  EXPECT_EQ(table->ValueAt(4, 3).AsDouble(), 1.0);
}

TEST(ReassignClustersTest, FreshIdentifierSkipsExistingClusterIds) {
  // Identifiers are user data: the first fresh-id candidate is
  // "m<visible-count>", and a pre-existing cluster already named that must
  // not silently absorb the unmatched insert (nor get renormalized with a
  // foreign member).
  auto table = std::make_unique<Table>(
      TableSchema("t", {{"id", DataType::kString},
                        {"a", DataType::kString},
                        {"b", DataType::kString},
                        {"prob", DataType::kDouble}}));
  for (int i = 0; i < 2; ++i) {
    // Five rows will be visible after the insert, so "m5" collides.
    ASSERT_TRUE(table
                    ->Insert({Value::String("m5"), Value::String("ann"),
                              Value::String("oslo"), Value::Double(0.5)})
                    .ok());
    ASSERT_TRUE(table
                    ->Insert({Value::String("c1"), Value::String("bob"),
                              Value::String("rome"), Value::Double(0.5)})
                    .ok());
  }
  uint64_t v = table->BeginWrite();
  ASSERT_TRUE(table
                  ->InsertVersioned({Value::Null(), Value::String("zephyr"),
                                     Value::String("quux"),
                                     Value::Double(0.5)},
                                    v)
                  .ok());
  table->CommitWrite(v);

  auto n = ReassignClusters(table.get(), kInfo, {Value::Null()}, v);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  Value id = table->ValueAt(4, 0);
  ASSERT_FALSE(id.is_null());
  EXPECT_NE(id.ToString(), "m5");
  EXPECT_NE(id.ToString(), "c1");
  EXPECT_EQ(table->ValueAt(4, 3).AsDouble(), 1.0);  // singleton is certain
  // The colliding cluster was never touched: bitwise stable.
  auto probs = VisibleClusterProbs(*table, 0, 3);
  ASSERT_EQ(probs["m5"].size(), 2u);
  EXPECT_TRUE(SameBits(probs["m5"][0], 0.5));
  EXPECT_TRUE(SameBits(probs["m5"][1], 0.5));
}

TEST(ReassignClustersTest, FullyDeletedClusterIsSkipped) {
  auto table = TwoClusterTable();
  uint64_t v = table->BeginWrite();
  table->MarkRowDead(0, v);
  table->MarkRowDead(1, v);
  table->CommitWrite(v);

  auto n = ReassignClusters(table.get(), kInfo, {Value::String("c0")}, v);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 0u);  // nothing visible left to renormalize
  auto probs = VisibleClusterProbs(*table, 0, 3);
  EXPECT_EQ(probs.count("c0"), 0u);
  ASSERT_EQ(probs["c1"].size(), 2u);
  EXPECT_TRUE(SameBits(probs["c1"][0], 0.5));
}

TEST(ReassignClustersTest, InjectedFaultLeavesFirstTouchedClusterStale) {
  auto table = TwoClusterTable();
  // Shrink both clusters to singletons in one "statement".
  uint64_t v = table->BeginWrite();
  table->MarkRowDead(1, v);
  table->MarkRowDead(3, v);
  table->CommitWrite(v);
  const std::vector<Value> touched = {Value::String("c0"),
                                      Value::String("c1")};

  SetIncrementalFaultInjection(IncrementalFault::kSkipFirstCluster);
  auto n = ReassignClusters(table.get(), kInfo, touched, v);
  SetIncrementalFaultInjection(IncrementalFault::kNone);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 1u);
  // The off-by-one skipped c0: its survivor keeps the stale 0.5 while c1's
  // survivor was correctly promoted to certainty.
  EXPECT_EQ(table->ValueAt(0, 3).AsDouble(), 0.5);
  EXPECT_EQ(table->ValueAt(2, 3).AsDouble(), 1.0);

  // Without the fault the same reassignment repairs c0.
  auto again = ReassignClusters(table.get(), kInfo, touched, v);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 2u);
  EXPECT_EQ(table->ValueAt(0, 3).AsDouble(), 1.0);
}

TEST(ReassignClustersTest, TableWithoutProbColumnIsRejected) {
  auto table = TwoClusterTable();
  DirtyTableInfo clean{"t", "id", "", {}};
  auto n = ReassignClusters(table.get(), clean, {Value::String("c0")},
                            table->committed_version());
  EXPECT_FALSE(n.ok());
}

}  // namespace
}  // namespace conquer
