// Tests of the alternative probability providers (uniform, source
// reliability) and the pluggable edit-distance assignment.

#include <gtest/gtest.h>

#include "prob/edit_distance.h"
#include "prob/providers.h"

namespace conquer {
namespace {

std::unique_ptr<Table> MakeSourcedTable() {
  auto table = std::make_unique<Table>(
      TableSchema("t", {{"id", DataType::kString},
                        {"name", DataType::kString},
                        {"src", DataType::kString},
                        {"prob", DataType::kDouble}}));
  auto ins = [&](const char* id, const char* name, const char* src) {
    EXPECT_TRUE(table
                    ->Insert({Value::String(id), Value::String(name),
                              Value::String(src), Value::Null()})
                    .ok());
  };
  ins("c1", "John Smith", "crm");
  ins("c1", "Jon Smith", "webform");
  ins("c1", "J. Smith", "legacy");
  ins("c2", "Mary Jones", "crm");
  ins("c2", "Mary Jonse", "webform");
  ins("c3", "Wei Chen", "legacy");
  return table;
}

const DirtyTableInfo kInfo{"t", "id", "prob", {}};

TEST(UniformProviderTest, AssignsOneOverClusterSize) {
  auto table = MakeSourcedTable();
  ASSERT_TRUE(AssignUniformProbabilities(table.get(), kInfo).ok());
  EXPECT_NEAR(table->row(0)[3].double_value(), 1.0 / 3, 1e-12);
  EXPECT_NEAR(table->row(3)[3].double_value(), 0.5, 1e-12);
  EXPECT_NEAR(table->row(5)[3].double_value(), 1.0, 1e-12);
}

TEST(UniformProviderTest, RequiresProbColumn) {
  auto table = MakeSourcedTable();
  DirtyTableInfo no_prob{"t", "id", "", {}};
  EXPECT_FALSE(AssignUniformProbabilities(table.get(), no_prob).ok());
}

TEST(SourceReliabilityTest, WeightsBySourceNormalizedPerCluster) {
  auto table = MakeSourcedTable();
  std::unordered_map<std::string, double> reliability = {
      {"crm", 0.8}, {"webform", 0.1}, {"legacy", 0.1}};
  ASSERT_TRUE(AssignSourceReliabilityProbabilities(table.get(), kInfo, "src",
                                                   reliability)
                  .ok());
  // c1: crm 0.8, webform 0.1, legacy 0.1 -> normalized as-is.
  EXPECT_NEAR(table->row(0)[3].double_value(), 0.8, 1e-12);
  EXPECT_NEAR(table->row(1)[3].double_value(), 0.1, 1e-12);
  // c2: crm 0.8, webform 0.1 -> 8/9 and 1/9.
  EXPECT_NEAR(table->row(3)[3].double_value(), 8.0 / 9, 1e-12);
  EXPECT_NEAR(table->row(4)[3].double_value(), 1.0 / 9, 1e-12);
  // c3 singleton from a weighted source -> 1.
  EXPECT_NEAR(table->row(5)[3].double_value(), 1.0, 1e-12);
}

TEST(SourceReliabilityTest, UnknownSourcesUseDefault) {
  auto table = MakeSourcedTable();
  std::unordered_map<std::string, double> reliability = {{"crm", 1.0}};
  ASSERT_TRUE(AssignSourceReliabilityProbabilities(table.get(), kInfo, "src",
                                                   reliability,
                                                   /*default=*/0.5)
                  .ok());
  // c1: crm 1.0, others 0.5 each -> 0.5, 0.25, 0.25.
  EXPECT_NEAR(table->row(0)[3].double_value(), 0.5, 1e-12);
  EXPECT_NEAR(table->row(1)[3].double_value(), 0.25, 1e-12);
}

TEST(SourceReliabilityTest, ZeroTotalFallsBackToUniform) {
  auto table = MakeSourcedTable();
  std::unordered_map<std::string, double> reliability;  // everything 0
  ASSERT_TRUE(AssignSourceReliabilityProbabilities(table.get(), kInfo, "src",
                                                   reliability)
                  .ok());
  EXPECT_NEAR(table->row(0)[3].double_value(), 1.0 / 3, 1e-12);
}

TEST(SourceReliabilityTest, NegativeWeightsRejected) {
  auto table = MakeSourcedTable();
  std::unordered_map<std::string, double> reliability = {{"crm", -1.0}};
  EXPECT_FALSE(AssignSourceReliabilityProbabilities(table.get(), kInfo, "src",
                                                    reliability)
                   .ok());
  EXPECT_FALSE(AssignSourceReliabilityProbabilities(table.get(), kInfo, "src",
                                                    {}, -0.5)
                   .ok());
}

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(LevenshteinDistance("John", "Jon"), 1u);
}

TEST(LevenshteinTest, SymmetricAndNormalized) {
  EXPECT_EQ(LevenshteinDistance("abcd", "xy"),
            LevenshteinDistance("xy", "abcd"));
  EXPECT_NEAR(NormalizedEditDistance("abcd", ""), 1.0, 1e-12);
  EXPECT_NEAR(NormalizedEditDistance("", ""), 0.0, 1e-12);
  EXPECT_NEAR(NormalizedEditDistance("John", "Jon"), 0.25, 1e-12);
}

TEST(MixedEditDistanceTest, AveragesAcrossAttributes) {
  Table table(TableSchema("t", {{"s", DataType::kString},
                                {"n", DataType::kInt64}}));
  ASSERT_TRUE(table.Insert({Value::String("abcd"), Value::Int(100)}).ok());
  ASSERT_TRUE(table.Insert({Value::String("abcd"), Value::Int(50)}).ok());
  MixedEditDistance measure;
  // String identical (0), numeric |100-50|/100 = 0.5 -> average 0.25.
  EXPECT_NEAR(measure.Distance(table, 0, 1, {0, 1}), 0.25, 1e-12);
  EXPECT_NEAR(measure.Distance(table, 0, 1, {0}), 0.0, 1e-12);
}

TEST(MixedEditDistanceTest, NullHandling) {
  Table table(TableSchema("t", {{"s", DataType::kString}}));
  ASSERT_TRUE(table.Insert({Value::String("x")}).ok());
  ASSERT_TRUE(table.Insert({Value::Null()}).ok());
  ASSERT_TRUE(table.Insert({Value::Null()}).ok());
  MixedEditDistance measure;
  EXPECT_NEAR(measure.Distance(table, 0, 1, {0}), 1.0, 1e-12);
  EXPECT_NEAR(measure.Distance(table, 1, 2, {0}), 0.0, 1e-12);
}

TEST(EditDistanceAssignerTest, MedoidRankingMatchesIntuition) {
  auto table = MakeSourcedTable();
  MixedEditDistance measure;
  AssignerOptions options;
  options.attribute_columns = {"name"};
  auto details =
      AssignProbabilitiesWithDistance(table.get(), kInfo, measure, options);
  ASSERT_TRUE(details.ok()) << details.status().ToString();
  // In c1 {John Smith, Jon Smith, J. Smith} the medoid is one of the full
  // spellings; "J. Smith" is farthest and least likely.
  EXPECT_LT((*details)[2].probability, (*details)[0].probability);
  EXPECT_LT((*details)[2].probability, (*details)[1].probability);
  // Distribution per cluster.
  EXPECT_NEAR((*details)[0].probability + (*details)[1].probability +
                  (*details)[2].probability,
              1.0, 1e-12);
  // Singleton certainty.
  EXPECT_NEAR((*details)[5].probability, 1.0, 1e-12);
}

TEST(EditDistanceAssignerTest, IdenticalClusterGoesUniform) {
  Table table(TableSchema("t", {{"id", DataType::kString},
                                {"s", DataType::kString},
                                {"prob", DataType::kDouble}}));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(table
                    .Insert({Value::String("c"), Value::String("same"),
                             Value::Null()})
                    .ok());
  }
  MixedEditDistance measure;
  DirtyTableInfo info{"t", "id", "prob", {}};
  auto details = AssignProbabilitiesWithDistance(&table, info, measure);
  ASSERT_TRUE(details.ok());
  for (const auto& d : *details) EXPECT_NEAR(d.probability, 0.25, 1e-12);
}

}  // namespace
}  // namespace conquer
