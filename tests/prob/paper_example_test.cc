// Reproduces the paper's Section 4 worked example: the Figure 6 dirty
// customer relation, its normalized matrix (Table 1), the cluster
// representatives (Table 2), and the probability calculation (Table 3).

#include <gtest/gtest.h>

#include "prob/assigner.h"

namespace conquer {
namespace {

class Figure6Test : public ::testing::Test {
 protected:
  void SetUp() override {
    TableSchema schema("customer", {{"id", DataType::kString},
                                    {"name", DataType::kString},
                                    {"mktsegmt", DataType::kString},
                                    {"nation", DataType::kString},
                                    {"address", DataType::kString},
                                    {"prob", DataType::kDouble}});
    table_ = std::make_unique<Table>(schema);
    auto ins = [&](const char* cid, const char* name, const char* seg,
                   const char* nation, const char* addr) {
      ASSERT_TRUE(table_
                      ->Insert({Value::String(cid), Value::String(name),
                                Value::String(seg), Value::String(nation),
                                Value::String(addr), Value::Null()})
                      .ok());
    };
    ins("c1", "Mary", "building", "USA", "Jones Ave");    // t1
    ins("c1", "Mary", "banking", "USA", "Jones Ave");     // t2
    ins("c1", "Marion", "banking", "USA", "Jones ave");   // t3
    ins("c2", "John", "building", "America", "Arrow");    // t4
    ins("c2", "John S.", "building", "USA", "Arrow");     // t5
    ins("c3", "John", "banking", "Canada", "Baldwin");    // t6
    info_ = {"customer", "id", "prob", {}};
  }

  std::unique_ptr<Table> table_;
  DirtyTableInfo info_;
};

// Table 1: each tuple's distribution gives probability 1/m = 0.25 to each
// of its four attribute values.
TEST_F(Figure6Test, Table1NormalizedMatrix) {
  ValueSpace space;
  auto rep = BuildClusterRepresentative(*table_, {0}, {1, 2, 3, 4}, &space);
  ASSERT_TRUE(rep.ok());
  EXPECT_NEAR(rep->weight, 1.0, 1e-12);
  for (const auto& [v, p] : rep->dist.entries()) {
    EXPECT_NEAR(p, 0.25, 1e-12);
  }
  EXPECT_EQ(rep->dist.entries().size(), 4u);
}

// Table 2: the representative of c1 = {t1, t2, t3}.
TEST_F(Figure6Test, Table2ClusterRepresentatives) {
  ValueSpace space;
  auto rep1 = BuildClusterRepresentative(*table_, {0, 1, 2}, {1, 2, 3, 4},
                                         &space);
  ASSERT_TRUE(rep1.ok());
  EXPECT_NEAR(rep1->weight, 3.0, 1e-12);

  auto at = [&](size_t attr, const char* value) {
    int64_t idx = space.Find(attr, Value::String(value));
    EXPECT_GE(idx, 0) << value;
    return idx < 0 ? 0.0 : rep1->dist.At(static_cast<uint32_t>(idx));
  };
  // Attribute positions within the representative: 0=name, 1=mktsegmt,
  // 2=nation, 3=address.
  EXPECT_NEAR(at(0, "Mary"), 2.0 / 12, 1e-12);
  EXPECT_NEAR(at(0, "Marion"), 1.0 / 12, 1e-12);
  EXPECT_NEAR(at(1, "building"), 1.0 / 12, 1e-12);
  EXPECT_NEAR(at(1, "banking"), 2.0 / 12, 1e-12);
  EXPECT_NEAR(at(2, "USA"), 3.0 / 12, 1e-12);  // "remains the same" (paper)
  EXPECT_NEAR(at(3, "Jones Ave"), 2.0 / 12, 1e-12);
  EXPECT_NEAR(at(3, "Jones ave"), 1.0 / 12, 1e-12);
  EXPECT_NEAR(rep1->dist.Mass(), 1.0, 1e-12);

  // rep2 reflects that both t4 and t5 contain "building" and "Arrow".
  ValueSpace space2;
  auto rep2 =
      BuildClusterRepresentative(*table_, {3, 4}, {1, 2, 3, 4}, &space2);
  ASSERT_TRUE(rep2.ok());
  auto at2 = [&](size_t attr, const char* value) {
    int64_t idx = space2.Find(attr, Value::String(value));
    return idx < 0 ? 0.0 : rep2->dist.At(static_cast<uint32_t>(idx));
  };
  EXPECT_NEAR(at2(1, "building"), 0.25, 1e-12);
  EXPECT_NEAR(at2(3, "Arrow"), 0.25, 1e-12);
  EXPECT_NEAR(at2(0, "John"), 0.125, 1e-12);
  EXPECT_NEAR(at2(0, "John S."), 0.125, 1e-12);
}

// Table 3: ordering and invariants of the assigned probabilities.
TEST_F(Figure6Test, Table3ProbabilityCalculation) {
  auto details = AssignProbabilities(table_.get(), info_);
  ASSERT_TRUE(details.ok()) << details.status().ToString();
  const auto& d = *details;
  ASSERT_EQ(d.size(), 6u);

  // "t2 is the most probable one to be in the clean database" (cluster c1).
  EXPECT_GT(d[1].probability, d[0].probability);
  EXPECT_GT(d[0].probability, d[2].probability);
  // Smaller distance <-> higher similarity <-> higher probability.
  EXPECT_LT(d[1].distance, d[0].distance);
  EXPECT_LT(d[0].distance, d[2].distance);
  EXPECT_GT(d[1].similarity, d[0].similarity);

  // c2: "two tuples, which are equally likely to be in the clean database".
  EXPECT_NEAR(d[3].probability, 0.5, 1e-12);
  EXPECT_NEAR(d[4].probability, 0.5, 1e-12);
  EXPECT_NEAR(d[3].distance, d[4].distance, 1e-12);

  // t6: "no uncertainty ... it constitutes a cluster summary of its own".
  EXPECT_NEAR(d[5].probability, 1.0, 1e-12);
  EXPECT_NEAR(d[5].distance, 0.0, 1e-12);

  // Per-cluster probabilities sum to 1 (Dfn 2).
  EXPECT_NEAR(d[0].probability + d[1].probability + d[2].probability, 1.0,
              1e-12);
  EXPECT_NEAR(d[3].probability + d[4].probability, 1.0, 1e-12);

  // Similarities are s_t = 1 - d_t / S(c_i); probabilities are
  // s_t / (|c|-1).
  double s_c1 = d[0].distance + d[1].distance + d[2].distance;
  for (int i : {0, 1, 2}) {
    EXPECT_NEAR(d[i].similarity, 1.0 - d[i].distance / s_c1, 1e-12);
    EXPECT_NEAR(d[i].probability, d[i].similarity / 2.0, 1e-12);
  }

  // The prob column was written in place.
  EXPECT_NEAR(table_->row(5)[5].double_value(), 1.0, 1e-12);
  EXPECT_NEAR(table_->row(1)[5].double_value(), d[1].probability, 1e-12);
}

TEST_F(Figure6Test, IdenticalDuplicatesGetUniformProbabilities) {
  TableSchema schema("dup", {{"id", DataType::kString},
                             {"a", DataType::kString},
                             {"prob", DataType::kDouble}});
  Table table(schema);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(table
                    .Insert({Value::String("c1"), Value::String("same"),
                             Value::Null()})
                    .ok());
  }
  DirtyTableInfo info{"dup", "id", "prob", {}};
  auto details = AssignProbabilities(&table, info);
  ASSERT_TRUE(details.ok());
  for (const auto& t : *details) {
    EXPECT_NEAR(t.probability, 1.0 / 3, 1e-12);
  }
}

TEST_F(Figure6Test, ExplicitAttributeColumnSelection) {
  AssignerOptions options;
  options.attribute_columns = {"name", "mktsegmt"};
  auto details = AssignProbabilities(table_.get(), info_, options);
  ASSERT_TRUE(details.ok()) << details.status().ToString();
  // Probabilities still form a distribution per cluster.
  EXPECT_NEAR((*details)[0].probability + (*details)[1].probability +
                  (*details)[2].probability,
              1.0, 1e-12);
}

TEST_F(Figure6Test, MissingProbColumnIsAnError) {
  DirtyTableInfo no_prob{"customer", "id", "", {}};
  auto details = AssignProbabilities(table_.get(), no_prob);
  EXPECT_FALSE(details.ok());
  EXPECT_EQ(details.status().code(), StatusCode::kInvalidArgument);
}

// Numeric and date attributes participate through their categorical
// representation (the paper treats all values as categorical symbols).
TEST_F(Figure6Test, MixedTypeAttributes) {
  TableSchema schema("mixed", {{"id", DataType::kString},
                               {"amount", DataType::kInt64},
                               {"when", DataType::kDate},
                               {"prob", DataType::kDouble}});
  Table table(schema);
  auto day = ParseDate("2001-02-03");
  ASSERT_TRUE(day.ok());
  ASSERT_TRUE(table
                  .Insert({Value::String("c1"), Value::Int(10),
                           Value::Date(*day), Value::Null()})
                  .ok());
  ASSERT_TRUE(table
                  .Insert({Value::String("c1"), Value::Int(10),
                           Value::Date(*day + 1), Value::Null()})
                  .ok());
  ASSERT_TRUE(table
                  .Insert({Value::String("c1"), Value::Int(99),
                           Value::Date(*day), Value::Null()})
                  .ok());
  DirtyTableInfo info{"mixed", "id", "prob", {}};
  auto details = AssignProbabilities(&table, info);
  ASSERT_TRUE(details.ok()) << details.status().ToString();
  double sum = 0.0;
  for (const auto& t : *details) sum += t.probability;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

}  // namespace
}  // namespace conquer
