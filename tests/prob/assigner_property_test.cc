// Property sweeps for probability assignment: on randomized clustered
// tables, both the information-loss assigner (Fig. 5) and the
// edit-distance variant must produce per-cluster probability distributions
// whose ordering is anti-monotone in the distance to the representative.

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "common/str_util.h"
#include "prob/assigner.h"
#include "prob/edit_distance.h"

namespace conquer {
namespace {

std::unique_ptr<Table> RandomClusteredTable(uint64_t seed, size_t* clusters) {
  Rng rng(seed);
  auto table = std::make_unique<Table>(
      TableSchema("t", {{"id", DataType::kString},
                        {"a", DataType::kString},
                        {"b", DataType::kString},
                        {"c", DataType::kInt64},
                        {"prob", DataType::kDouble}}));
  const char* words[] = {"alpha", "beta", "gamma", "delta", "epsilon",
                         "zeta",  "eta",  "theta"};
  *clusters = static_cast<size_t>(rng.Uniform(1, 6));
  for (size_t k = 0; k < *clusters; ++k) {
    std::string id = "c" + std::to_string(k);
    // A canonical pattern with random per-member corruption.
    std::string a = words[rng.Uniform(0, 7)];
    std::string b = words[rng.Uniform(0, 7)];
    int64_t c = rng.Uniform(0, 99);
    int members = static_cast<int>(rng.Uniform(1, 6));
    for (int m = 0; m < members; ++m) {
      std::string am = rng.Chance(0.3) ? words[rng.Uniform(0, 7)] : a;
      std::string bm = rng.Chance(0.3) ? words[rng.Uniform(0, 7)] : b;
      int64_t cm = rng.Chance(0.3) ? rng.Uniform(0, 99) : c;
      EXPECT_TRUE(table
                      ->Insert({Value::String(id), Value::String(am),
                                Value::String(bm), Value::Int(cm),
                                Value::Null()})
                      .ok());
    }
  }
  return table;
}

const DirtyTableInfo kInfo{"t", "id", "prob", {}};

class AssignerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

void CheckInvariants(const Table& table,
                     const std::vector<TupleProbability>& details) {
  ASSERT_EQ(details.size(), table.num_rows());
  std::map<std::string, double> mass;
  std::map<std::string, size_t> sizes;
  for (const auto& d : details) {
    // Probabilities and similarities are proper fractions.
    ASSERT_GE(d.probability, -1e-12);
    ASSERT_LE(d.probability, 1.0 + 1e-12);
    ASSERT_GE(d.distance, -1e-12);
    std::string id = table.row(d.row)[0].string_value();
    mass[id] += d.probability;
    sizes[id] += 1;
  }
  // Dfn 2: probabilities within each cluster sum to 1.
  for (const auto& [id, m] : mass) {
    ASSERT_NEAR(m, 1.0, 1e-9) << "cluster " << id;
  }
  // Singletons are certain.
  for (const auto& d : details) {
    std::string id = table.row(d.row)[0].string_value();
    if (sizes[id] == 1) {
      ASSERT_NEAR(d.probability, 1.0, 1e-12);
    }
  }
  // Within a cluster, probability ordering is anti-monotone in distance.
  std::map<std::string, std::vector<const TupleProbability*>> per_cluster;
  for (const auto& d : details) {
    per_cluster[table.row(d.row)[0].string_value()].push_back(&d);
  }
  for (const auto& [id, members] : per_cluster) {
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = 0; j < members.size(); ++j) {
        if (members[i]->distance < members[j]->distance - 1e-12) {
          ASSERT_GE(members[i]->probability,
                    members[j]->probability - 1e-12)
              << "cluster " << id;
        }
      }
    }
  }
}

TEST_P(AssignerPropertyTest, InformationLossInvariants) {
  size_t clusters = 0;
  auto table = RandomClusteredTable(GetParam(), &clusters);
  auto details = AssignProbabilities(table.get(), kInfo);
  ASSERT_TRUE(details.ok()) << details.status().ToString();
  CheckInvariants(*table, *details);
}

TEST_P(AssignerPropertyTest, EditDistanceInvariants) {
  size_t clusters = 0;
  auto table = RandomClusteredTable(GetParam() ^ 0x5555, &clusters);
  MixedEditDistance measure;
  auto details =
      AssignProbabilitiesWithDistance(table.get(), kInfo, measure);
  ASSERT_TRUE(details.ok()) << details.status().ToString();
  CheckInvariants(*table, *details);
}

// The two assigners agree on which member of a cluster is "most canonical"
// when one member dominates by exact duplication.
TEST_P(AssignerPropertyTest, DominantDuplicateWinsUnderBothMeasures) {
  Rng rng(GetParam() * 31 + 5);
  auto table = std::make_unique<Table>(
      TableSchema("t", {{"id", DataType::kString},
                        {"a", DataType::kString},
                        {"b", DataType::kString},
                        {"c", DataType::kInt64},
                        {"prob", DataType::kDouble}}));
  // Four identical tuples plus one fully distinct outlier.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(table
                    ->Insert({Value::String("c0"), Value::String("common"),
                              Value::String("shape"), Value::Int(7),
                              Value::Null()})
                    .ok());
  }
  ASSERT_TRUE(table
                  ->Insert({Value::String("c0"), Value::String("utterly"),
                            Value::String("different"),
                            Value::Int(rng.Uniform(1000, 2000)),
                            Value::Null()})
                  .ok());

  auto info_loss = AssignProbabilities(table.get(), kInfo);
  ASSERT_TRUE(info_loss.ok());
  EXPECT_LT((*info_loss)[4].probability, (*info_loss)[0].probability);

  MixedEditDistance measure;
  auto edit = AssignProbabilitiesWithDistance(table.get(), kInfo, measure);
  ASSERT_TRUE(edit.ok());
  EXPECT_LT((*edit)[4].probability, (*edit)[0].probability);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssignerPropertyTest,
                         ::testing::Range<uint64_t>(1, 25));

}  // namespace
}  // namespace conquer
