// Tests of the baseline LIMBO-family tuple matcher.

#include "prob/matcher.h"

#include <gtest/gtest.h>

#include <set>

#include "prob/assigner.h"

namespace conquer {
namespace {

std::unique_ptr<Table> MakePeopleTable() {
  auto table = std::make_unique<Table>(
      TableSchema("people", {{"id", DataType::kString},
                             {"name", DataType::kString},
                             {"city", DataType::kString},
                             {"segment", DataType::kString},
                             {"prob", DataType::kDouble}}));
  auto ins = [&](const char* name, const char* city, const char* seg) {
    EXPECT_TRUE(table
                    ->Insert({Value::Null(), Value::String(name),
                              Value::String(city), Value::String(seg),
                              Value::Null()})
                    .ok());
  };
  // Entity A: three near-identical representations.
  ins("John Smith", "Toronto", "banking");
  ins("John Smith", "Toronto", "building");
  ins("John Smith", "Toronto", "banking");
  // Entity B: two representations.
  ins("Mary Jones", "Ottawa", "retail");
  ins("Mary Jones", "Ottawa", "retail");
  // Entity C: a singleton, nothing in common with A or B.
  ins("Wei Chen", "Vancouver", "shipping");
  return table;
}

TEST(MatcherTest, GroupsSimilarTuplesAndSeparatesDissimilar) {
  auto table = MakePeopleTable();
  MatcherOptions options;
  options.exclude_columns = {"id", "prob"};
  auto result = MatchTuples(*table, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_clusters, 3u);
  // Rows 0-2 together, 3-4 together, 5 alone.
  EXPECT_EQ(result->cluster_of_row[0], result->cluster_of_row[1]);
  EXPECT_EQ(result->cluster_of_row[0], result->cluster_of_row[2]);
  EXPECT_EQ(result->cluster_of_row[3], result->cluster_of_row[4]);
  EXPECT_NE(result->cluster_of_row[0], result->cluster_of_row[3]);
  EXPECT_NE(result->cluster_of_row[0], result->cluster_of_row[5]);
}

TEST(MatcherTest, ZeroThresholdMergesOnlyIdenticalTuples) {
  auto table = MakePeopleTable();
  MatcherOptions options;
  options.merge_threshold = 0.0;
  options.exclude_columns = {"id", "prob"};
  auto result = MatchTuples(*table, options);
  ASSERT_TRUE(result.ok());
  // Rows 0 and 2 are identical; 1 differs in segment; 3/4 identical.
  EXPECT_EQ(result->cluster_of_row[0], result->cluster_of_row[2]);
  EXPECT_NE(result->cluster_of_row[0], result->cluster_of_row[1]);
  EXPECT_EQ(result->cluster_of_row[3], result->cluster_of_row[4]);
  EXPECT_EQ(result->num_clusters, 4u);
}

TEST(MatcherTest, MaxThresholdMergesEverything) {
  auto table = MakePeopleTable();
  MatcherOptions options;
  options.merge_threshold = 1.0;
  options.exclude_columns = {"id", "prob"};
  auto result = MatchTuples(*table, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 1u);
}

TEST(MatcherTest, ExplicitAttributeColumns) {
  auto table = MakePeopleTable();
  MatcherOptions options;
  options.attribute_columns = {"city"};
  auto result = MatchTuples(*table, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 3u);  // Toronto / Ottawa / Vancouver
}

TEST(MatcherTest, InvalidThresholdRejected) {
  auto table = MakePeopleTable();
  MatcherOptions options;
  options.merge_threshold = 1.5;
  EXPECT_FALSE(MatchTuples(*table, options).ok());
}

TEST(MatcherTest, NoColumnsLeftIsAnError) {
  Table table(TableSchema("t", {{"id", DataType::kString}}));
  MatcherOptions options;
  options.exclude_columns = {"id"};
  EXPECT_FALSE(MatchTuples(table, options).ok());
}

TEST(MatcherTest, AssignClusterIdentifiersWritesColumn) {
  auto table = MakePeopleTable();
  MatcherOptions options;
  options.exclude_columns = {"prob"};
  auto result = AssignClusterIdentifiers(table.get(), "id", options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::set<std::string> ids;
  for (const Row& r : table->rows()) ids.insert(r[0].string_value());
  EXPECT_EQ(ids.size(), result->num_clusters);
  EXPECT_EQ(table->row(0)[0].string_value(), table->row(1)[0].string_value());
}

// End-to-end: raw table -> matcher -> Fig. 5 probabilities -> per-cluster
// distributions.
TEST(MatcherTest, PipelineIntoProbabilityAssignment) {
  auto table = MakePeopleTable();
  MatcherOptions options;
  options.exclude_columns = {"prob"};
  ASSERT_TRUE(AssignClusterIdentifiers(table.get(), "id", options).ok());
  DirtyTableInfo info{"people", "id", "prob", {}};
  auto details = AssignProbabilities(table.get(), info);
  ASSERT_TRUE(details.ok()) << details.status().ToString();
  // Per-cluster probabilities sum to 1.
  std::map<std::string, double> mass;
  for (const auto& d : *details) {
    mass[table->row(d.row)[0].string_value()] += d.probability;
  }
  for (const auto& [id, m] : mass) EXPECT_NEAR(m, 1.0, 1e-9) << id;
  // In entity A, the majority representation (banking) outranks the outlier.
  EXPECT_GT((*details)[0].probability, (*details)[1].probability);
}

TEST(MatcherTest, EmptyTableYieldsNoClusters) {
  Table table(TableSchema("t", {{"a", DataType::kString}}));
  auto result = MatchTuples(table, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 0u);
}

}  // namespace
}  // namespace conquer
