// Unit tests for the Value type: construction, comparison semantics,
// hashing, date arithmetic, and printing.

#include "types/value.h"

#include <gtest/gtest.h>

namespace conquer {
namespace {

TEST(ValueTest, ConstructionAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).bool_value(), true);
  EXPECT_EQ(Value::Int(42).int_value(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::String("abc").string_value(), "abc");
  EXPECT_EQ(Value::Date(100).date_value(), 100);
}

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(Value::Null().type(), DataType::kNull);
  EXPECT_EQ(Value::Int(1).type(), DataType::kInt64);
  EXPECT_EQ(Value::Date(1).type(), DataType::kDate);
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value::Int(3).Compare(Value::Double(3.0)), 0);
  EXPECT_LT(Value::Int(3).Compare(Value::Double(3.5)), 0);
  EXPECT_GT(Value::Double(4.0).Compare(Value::Int(3)), 0);
}

TEST(ValueTest, StringComparisonIsLexicographic) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("x").Compare(Value::String("x")), 0);
  EXPECT_GT(Value::String("b").Compare(Value::String("ab")), 0);
}

TEST(ValueTest, TotalCompareOrdersNullsFirst) {
  EXPECT_LT(Value::Null().TotalCompare(Value::Int(0)), 0);
  EXPECT_EQ(Value::Null().TotalCompare(Value::Null()), 0);
  EXPECT_GT(Value::String("a").TotalCompare(Value::Int(5)), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  // 3 and 3.0 compare equal under TotalCompare, so they must collide.
  EXPECT_EQ(Value::Int(3).TotalCompare(Value::Double(3.0)), 0);
  EXPECT_EQ(Value::Int(3).Hash(), Value::Double(3.0).Hash());
  EXPECT_EQ(Value::String("xy").Hash(), Value::String("xy").Hash());
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(-7).ToString(), "-7");
  EXPECT_EQ(Value::String("hi").ToString(), "hi");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
}

TEST(ValueTest, SqlLiteralQuotingAndEscaping) {
  EXPECT_EQ(Value::Int(5).ToSqlLiteral(), "5");
  EXPECT_EQ(Value::String("it's").ToSqlLiteral(), "'it''s'");
  auto d = ParseDate("1995-03-15");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(Value::Date(*d).ToSqlLiteral(), "DATE '1995-03-15'");
}

TEST(DateTest, EpochAnchors) {
  EXPECT_EQ(CivilToDays(1970, 1, 1), 0);
  EXPECT_EQ(CivilToDays(1970, 1, 2), 1);
  EXPECT_EQ(CivilToDays(1969, 12, 31), -1);
  EXPECT_EQ(CivilToDays(2000, 3, 1), 11017);
}

TEST(DateTest, RoundTripThroughCivil) {
  for (int64_t days : {-10000, -1, 0, 1, 10000, 20000}) {
    int y, m, d;
    DaysToCivil(days, &y, &m, &d);
    EXPECT_EQ(CivilToDays(y, m, d), days);
  }
}

TEST(DateTest, LeapYearHandling) {
  EXPECT_EQ(CivilToDays(2000, 2, 29) + 1, CivilToDays(2000, 3, 1));
  EXPECT_EQ(CivilToDays(1900, 2, 28) + 1, CivilToDays(1900, 3, 1));  // not leap
  EXPECT_EQ(CivilToDays(1996, 2, 29) + 1, CivilToDays(1996, 3, 1));
}

TEST(DateTest, ParseAndFormat) {
  auto d = ParseDate("1998-09-02");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(FormatDate(*d), "1998-09-02");
  EXPECT_FALSE(ParseDate("1998/09/02").ok());
  EXPECT_FALSE(ParseDate("not-a-date").ok());
  EXPECT_FALSE(ParseDate("1998-13-02").ok());
  EXPECT_FALSE(ParseDate("1998-09-32").ok());
  EXPECT_FALSE(ParseDate("1998-09-02x").ok());
}

TEST(DateTest, DateComparisonOrdersChronologically) {
  auto a = ParseDate("1995-03-14");
  auto b = ParseDate("1995-03-15");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LT(Value::Date(*a).Compare(Value::Date(*b)), 0);
}

TEST(TypesComparableTest, Matrix) {
  EXPECT_TRUE(TypesComparable(DataType::kInt64, DataType::kDouble));
  EXPECT_TRUE(TypesComparable(DataType::kString, DataType::kString));
  EXPECT_TRUE(TypesComparable(DataType::kNull, DataType::kDate));
  EXPECT_FALSE(TypesComparable(DataType::kString, DataType::kInt64));
  EXPECT_FALSE(TypesComparable(DataType::kDate, DataType::kInt64));
  EXPECT_FALSE(TypesComparable(DataType::kBool, DataType::kInt64));
}

TEST(DataTypeTest, Names) {
  EXPECT_STREQ(DataTypeToString(DataType::kInt64), "INT64");
  EXPECT_STREQ(DataTypeToString(DataType::kString), "STRING");
  EXPECT_STREQ(DataTypeToString(DataType::kDate), "DATE");
}

TEST(ValueTest, AsDoubleWidening) {
  EXPECT_DOUBLE_EQ(Value::Int(7).AsDouble(), 7.0);
  EXPECT_DOUBLE_EQ(Value::Bool(true).AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(Value::Date(10).AsDouble(), 10.0);
}

}  // namespace
}  // namespace conquer
