// Tests of the Cora-like bibliographic generator and the Section 4.2
// qualitative evaluation: assigned probabilities agree with intuition.

#include "gen/cora.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "prob/assigner.h"

namespace conquer {
namespace {

TEST(CoraGenTest, GeneratesRequestedClusters) {
  CoraConfig config;
  config.num_clusters = 8;
  config.min_cluster_size = 2;
  config.max_cluster_size = 10;
  DirtyTableInfo info;
  auto table = MakeCoraLikeTable(config, &info);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(info.id_column, "id");
  std::set<std::string> ids;
  for (const Row& r : (*table)->rows()) ids.insert(r[0].string_value());
  EXPECT_EQ(ids.size(), 8u);
}

TEST(CoraGenTest, Table4ClusterHasFiftySixTuples) {
  DirtyTableInfo info;
  auto table = MakeTable4Cluster(&info);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_rows(), 56u);
}

// The paper's Table 4 discussion: "the most likely tuple shares all its
// values with the set of most frequent values"; the two least likely are
// the misclustered tuple and the heavily reformatted one.
TEST(CoraGenTest, Table4RankingMatchesPaperIntuition) {
  DirtyTableInfo info;
  auto table = MakeTable4Cluster(&info);
  ASSERT_TRUE(table.ok());
  auto details = AssignProbabilities(table->get(), info);
  ASSERT_TRUE(details.ok()) << details.status().ToString();

  std::vector<TupleProbability> ranked = *details;
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const TupleProbability& a, const TupleProbability& b) {
                     return a.probability > b.probability;
                   });
  // Top tuple is one of the canonical rows (0..30).
  EXPECT_LE(ranked.front().row, 30u);
  // The two divergent tuples (rows 54: reformatted, 55: misclustered) are
  // the two least likely.
  std::set<size_t> bottom2 = {ranked[54].row, ranked[55].row};
  EXPECT_TRUE(bottom2.count(54) == 1) << "reformatted tuple not in bottom 2";
  EXPECT_TRUE(bottom2.count(55) == 1) << "misclustered tuple not in bottom 2";
  // Near-canonical tuples (only the volume differs, rows 31..40) rank above
  // the format variants on average but below the canonical form.
  double canon_p = 0.0, near_p = 0.0;
  for (const auto& d : *details) {
    if (d.row <= 30) canon_p += d.probability;
    if (d.row >= 31 && d.row <= 40) near_p += d.probability;
  }
  EXPECT_GT(canon_p / 31.0, near_p / 10.0);
  // Probabilities form a distribution.
  double total = 0.0;
  for (const auto& d : *details) total += d.probability;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(CoraGenTest, SingletonClustersGetProbabilityOne) {
  CoraConfig config;
  config.num_clusters = 5;
  config.min_cluster_size = 1;
  config.max_cluster_size = 1;
  DirtyTableInfo info;
  auto table = MakeCoraLikeTable(config, &info);
  ASSERT_TRUE(table.ok());
  auto details = AssignProbabilities(table->get(), info);
  ASSERT_TRUE(details.ok());
  for (const auto& d : *details) EXPECT_NEAR(d.probability, 1.0, 1e-12);
}

TEST(CoraGenTest, InvalidBoundsRejected) {
  CoraConfig config;
  config.min_cluster_size = 5;
  config.max_cluster_size = 2;
  DirtyTableInfo info;
  EXPECT_FALSE(MakeCoraLikeTable(config, &info).ok());
}

TEST(CoraGenTest, DeterministicForFixedSeed) {
  CoraConfig config;
  DirtyTableInfo info;
  auto a = MakeCoraLikeTable(config, &info);
  auto b = MakeCoraLikeTable(config, &info);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ((*a)->num_rows(), (*b)->num_rows());
  for (size_t i = 0; i < (*a)->num_rows(); ++i) {
    for (size_t c = 0; c < (*a)->schema().num_columns(); ++c) {
      ASSERT_EQ((*a)->row(i)[c].TotalCompare((*b)->row(i)[c]), 0);
    }
  }
}

}  // namespace
}  // namespace conquer
