// Tests of the dirty TPC-H generator (the paper's UIS-generator substitute).

#include "gen/tpch_dirty.h"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace conquer {
namespace {

TpchDirtyConfig SmallConfig(int iff) {
  TpchDirtyConfig config;
  config.scale_factor = 0.004;  // ~600 customer tuples, ~6000 order tuples
  config.inconsistency_factor = iff;
  config.seed = 7;
  return config;
}

TEST(TpchCardinalitiesTest, ScalesLinearly) {
  auto c1 = TpchCardinalities::For(0.01);
  auto c2 = TpchCardinalities::For(0.02);
  EXPECT_EQ(c1.customer, 1500u);
  EXPECT_EQ(c2.customer, 3000u);
  EXPECT_EQ(c1.region, 5u);
  EXPECT_EQ(c1.nation, 25u);
  EXPECT_EQ(c1.partsupp, c1.part * 4);
}

TEST(TpchDirtyTest, GeneratesAllEightTables) {
  auto gen = MakeTpchDirtyDatabase(SmallConfig(3));
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  for (const char* name : {"region", "nation", "supplier", "part", "partsupp",
                           "customer", "orders", "lineitem"}) {
    auto t = gen->db->GetTable(name);
    ASSERT_TRUE(t.ok()) << name;
    EXPECT_GT((*t)->num_rows(), 0u) << name;
    EXPECT_NE(gen->dirty.Find(name), nullptr) << name;
  }
}

TEST(TpchDirtyTest, CleanDatabaseWhenIfIsOne) {
  auto gen = MakeTpchDirtyDatabase(SmallConfig(1));
  ASSERT_TRUE(gen.ok());
  auto customer = gen->db->GetTable("customer");
  ASSERT_TRUE(customer.ok());
  // Every cluster is a singleton: ids are unique.
  std::unordered_set<std::string> ids;
  for (const Row& r : (*customer)->rows()) {
    EXPECT_TRUE(ids.insert(r[0].string_value()).second);
    EXPECT_NEAR(r.back().AsDouble(), 1.0, 1e-12);  // prob 1 everywhere
  }
}

TEST(TpchDirtyTest, ClusterSizesFollowUniformOneToTwoIfMinusOne) {
  auto gen = MakeTpchDirtyDatabase(SmallConfig(5));
  ASSERT_TRUE(gen.ok());
  auto customer = gen->db->GetTable("customer");
  ASSERT_TRUE(customer.ok());
  std::unordered_map<std::string, size_t> sizes;
  for (const Row& r : (*customer)->rows()) ++sizes[r[0].string_value()];
  double sum = 0;
  size_t max_size = 0, min_size = 99;
  for (const auto& [id, n] : sizes) {
    sum += static_cast<double>(n);
    max_size = std::max(max_size, n);
    min_size = std::min(min_size, n);
  }
  double mean = sum / static_cast<double>(sizes.size());
  // Uniform over [1, 9]: mean 5, bounds respected.
  EXPECT_LE(max_size, 9u);
  EXPECT_GE(min_size, 1u);
  EXPECT_NEAR(mean, 5.0, 0.8);
}

TEST(TpchDirtyTest, ProbabilitiesFormDistributionPerCluster) {
  auto gen = MakeTpchDirtyDatabase(SmallConfig(4));
  ASSERT_TRUE(gen.ok());
  for (const char* name : {"customer", "orders", "lineitem", "part"}) {
    auto t = gen->db->GetTable(name);
    ASSERT_TRUE(t.ok());
    std::unordered_map<std::string, double> mass;
    for (const Row& r : (*t)->rows()) {
      mass[r[0].string_value()] += r.back().AsDouble();
    }
    for (const auto& [id, m] : mass) {
      ASSERT_NEAR(m, 1.0, 1e-9) << name << " cluster " << id;
    }
  }
}

TEST(TpchDirtyTest, PropagatedIdentifiersMatchReferencedClusters) {
  auto gen = MakeTpchDirtyDatabase(SmallConfig(3));
  ASSERT_TRUE(gen.ok());
  // Every o_cust_id must be an existing customer cluster id.
  auto orders = gen->db->GetTable("orders");
  auto customer = gen->db->GetTable("customer");
  ASSERT_TRUE(orders.ok() && customer.ok());
  std::unordered_set<std::string> cust_ids;
  for (const Row& r : (*customer)->rows()) cust_ids.insert(r[0].string_value());
  size_t o_cust_id = (*orders)->schema().GetColumnIndex("o_cust_id").value();
  for (const Row& r : (*orders)->rows()) {
    ASSERT_FALSE(r[o_cust_id].is_null());
    EXPECT_TRUE(cust_ids.count(r[o_cust_id].string_value()) > 0);
  }
}

TEST(TpchDirtyTest, DeterministicForFixedSeed) {
  auto a = MakeTpchDirtyDatabase(SmallConfig(3));
  auto b = MakeTpchDirtyDatabase(SmallConfig(3));
  ASSERT_TRUE(a.ok() && b.ok());
  auto ta = a->db->GetTable("lineitem").value();
  auto tb = b->db->GetTable("lineitem").value();
  ASSERT_EQ(ta->num_rows(), tb->num_rows());
  for (size_t i = 0; i < std::min<size_t>(ta->num_rows(), 100); ++i) {
    for (size_t c = 0; c < ta->schema().num_columns(); ++c) {
      ASSERT_EQ(ta->row(i)[c].TotalCompare(tb->row(i)[c]), 0)
          << "row " << i << " col " << c;
    }
  }
}

TEST(TpchDirtyTest, DuplicatesPerturbAttributes) {
  auto gen = MakeTpchDirtyDatabase(SmallConfig(5));
  ASSERT_TRUE(gen.ok());
  auto customer = gen->db->GetTable("customer");
  ASSERT_TRUE(customer.ok());
  // Within clusters of size > 1, at least some attribute values disagree.
  // rows() materializes a fresh copy; keep it alive while pointers into it
  // are held below.
  std::vector<Row> rows = (*customer)->rows();
  std::unordered_map<std::string, std::vector<const Row*>> clusters;
  for (const Row& r : rows) {
    clusters[r[0].string_value()].push_back(&r);
  }
  size_t name_col = (*customer)->schema().GetColumnIndex("c_name").value();
  size_t disagreements = 0, multi = 0;
  for (const auto& [id, rows] : clusters) {
    if (rows.size() < 2) continue;
    ++multi;
    for (size_t i = 1; i < rows.size(); ++i) {
      if ((*rows[i])[name_col].TotalCompare((*rows[0])[name_col]) != 0) {
        ++disagreements;
        break;
      }
    }
  }
  ASSERT_GT(multi, 0u);
  EXPECT_GT(disagreements, multi / 4);  // perturbation is doing something
}

TEST(TpchDirtyTest, IndexesAndStatsBuild) {
  auto gen = MakeTpchDirtyDatabase(SmallConfig(3));
  ASSERT_TRUE(gen.ok());
  ASSERT_TRUE(gen->BuildIndexesAndStats().ok());
  auto customer = gen->db->GetTable("customer");
  ASSERT_TRUE(customer.ok());
  EXPECT_NE((*customer)->GetIndex(0), nullptr);  // id column indexed
  EXPECT_GT((*customer)->column_stats(0).num_distinct, 0u);
}

TEST(TpchDirtyTest, InvalidConfigsAreRejected) {
  TpchDirtyConfig bad = SmallConfig(0);
  EXPECT_FALSE(MakeTpchDirtyDatabase(bad).ok());
  bad = SmallConfig(3);
  bad.scale_factor = 0;
  EXPECT_FALSE(MakeTpchDirtyDatabase(bad).ok());
  bad = SmallConfig(50);
  EXPECT_FALSE(MakeTpchDirtyDatabase(bad).ok());
}

TEST(TpchDirtyTest, NoProbabilityFillLeavesNulls) {
  TpchDirtyConfig config = SmallConfig(3);
  config.fill_probabilities = false;
  auto gen = MakeTpchDirtyDatabase(config);
  ASSERT_TRUE(gen.ok());
  auto customer = gen->db->GetTable("customer");
  ASSERT_TRUE(customer.ok());
  EXPECT_TRUE((*customer)->row(0).back().is_null());
}

}  // namespace
}  // namespace conquer
