// Unit tests for the SQL lexer.

#include "sql/lexer.h"

#include <gtest/gtest.h>

#include <clocale>

namespace conquer {
namespace {

std::vector<Token> Lex(const std::string& sql) {
  Lexer lexer(sql);
  auto tokens = lexer.Tokenize();
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  return tokens.ok() ? std::move(tokens).value() : std::vector<Token>{};
}

TEST(LexerTest, KeywordsAreCaseInsensitiveAndUppercased) {
  auto tokens = Lex("SeLeCt FROM where");
  ASSERT_EQ(tokens.size(), 4u);  // + EOF
  EXPECT_EQ(tokens[0].type, TokenType::kKeyword);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].text, "FROM");
  EXPECT_EQ(tokens[2].text, "WHERE");
  EXPECT_EQ(tokens[3].type, TokenType::kEof);
}

TEST(LexerTest, IdentifiersKeepTheirSpelling) {
  auto tokens = Lex("c_MktSegment lineitem");
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "c_MktSegment");
  EXPECT_EQ(tokens[1].text, "lineitem");
}

TEST(LexerTest, IntegerAndDoubleLiterals) {
  auto tokens = Lex("42 3.14 0.05 1e3 2.5e-2");
  EXPECT_EQ(tokens[0].type, TokenType::kIntLiteral);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].type, TokenType::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(tokens[1].double_value, 3.14);
  EXPECT_DOUBLE_EQ(tokens[2].double_value, 0.05);
  EXPECT_DOUBLE_EQ(tokens[3].double_value, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[4].double_value, 0.025);
}

TEST(LexerTest, StringLiteralsWithEscapedQuotes) {
  auto tokens = Lex("'hello' 'it''s'");
  EXPECT_EQ(tokens[0].type, TokenType::kStringLiteral);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "it's");
}

TEST(LexerTest, QuotedIdentifiers) {
  auto tokens = Lex("\"order\"");
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "order");
}

TEST(LexerTest, WriteWordsAreSoftKeywords) {
  // The write-statement words lex as identifiers (so columns and tables
  // may be named after them) but still answer to IsKeyword in keyword
  // position, case-insensitively.
  auto tokens = Lex("insert INTO Values update set delete");
  ASSERT_EQ(tokens.size(), 7u);  // + EOF
  const char* kws[] = {"INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE"};
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(tokens[i].type, TokenType::kIdentifier);
    EXPECT_TRUE(tokens[i].IsKeyword(kws[i])) << kws[i];
  }
  // Identifiers never match reserved words through the soft path.
  EXPECT_FALSE(tokens[0].IsKeyword("FROM"));
}

TEST(LexerTest, QuotedSoftKeywordsStayPlainIdentifiers) {
  auto tokens = Lex("\"values\"");
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_TRUE(tokens[0].quoted);
  EXPECT_FALSE(tokens[0].IsKeyword("VALUES"));
}

TEST(LexerTest, OperatorsAndPunctuation) {
  auto tokens = Lex("= <> != < <= > >= + - * / ( ) , .");
  std::vector<TokenType> expected = {
      TokenType::kEq, TokenType::kNe, TokenType::kNe,    TokenType::kLt,
      TokenType::kLe, TokenType::kGt, TokenType::kGe,    TokenType::kPlus,
      TokenType::kMinus, TokenType::kStar, TokenType::kSlash,
      TokenType::kLParen, TokenType::kRParen, TokenType::kComma,
      TokenType::kDot, TokenType::kEof};
  ASSERT_EQ(tokens.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(tokens[i].type, expected[i]) << "token " << i;
  }
}

TEST(LexerTest, LineCommentsAreSkipped) {
  auto tokens = Lex("select -- this is a comment\n 1");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].int_value, 1);
}

TEST(LexerTest, PositionsAreByteOffsets) {
  auto tokens = Lex("ab  cd");
  EXPECT_EQ(tokens[0].position, 0u);
  EXPECT_EQ(tokens[1].position, 4u);
}

TEST(LexerTest, ErrorsReportOffsets) {
  Lexer bad("select #");
  auto tokens = bad.Tokenize();
  ASSERT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("offset 7"), std::string::npos)
      << tokens.status().ToString();
}

TEST(LexerTest, UnterminatedStringIsAnError) {
  Lexer bad("'oops");
  EXPECT_FALSE(bad.Tokenize().ok());
}

TEST(LexerTest, UnterminatedQuotedIdentifierIsAnError) {
  Lexer bad("\"oops");
  EXPECT_FALSE(bad.Tokenize().ok());
}

TEST(LexerTest, BangWithoutEqualsIsAnError) {
  Lexer bad("a ! b");
  EXPECT_FALSE(bad.Tokenize().ok());
}

TEST(LexerTest, EmptyInputYieldsEof) {
  auto tokens = Lex("   \n\t ");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEof);
}

TEST(LexerTest, ParamPlaceholderToken) {
  auto tokens = Lex("where a = ? and b < ?");
  ASSERT_EQ(tokens.size(), 9u);  // + EOF
  EXPECT_EQ(tokens[3].type, TokenType::kParam);
  EXPECT_EQ(tokens[7].type, TokenType::kParam);
}

// Regression: number lexing used std::strtod, which honours LC_NUMERIC —
// under a comma-decimal locale (e.g. de_DE) "3.14" parsed as 3. The lexer
// must be locale-independent. Skipped where no such locale is installed.
TEST(LexerTest, DoubleLiteralsIgnoreCommaDecimalLocale) {
  const char* old = std::setlocale(LC_NUMERIC, nullptr);
  std::string saved = old != nullptr ? old : "C";
  const char* set = nullptr;
  for (const char* name : {"de_DE.UTF-8", "de_DE.utf8", "de_DE", "fr_FR.UTF-8",
                           "fr_FR.utf8", "fr_FR"}) {
    set = std::setlocale(LC_NUMERIC, name);
    if (set != nullptr) break;
  }
  if (set == nullptr) {
    GTEST_SKIP() << "no comma-decimal locale installed";
  }
  auto tokens = Lex("3.14 0.5e2");
  std::setlocale(LC_NUMERIC, saved.c_str());
  ASSERT_EQ(tokens[0].type, TokenType::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(tokens[0].double_value, 3.14);
  EXPECT_DOUBLE_EQ(tokens[1].double_value, 50.0);
}

}  // namespace
}  // namespace conquer
