// Unit tests for the SQL parser: statement shapes, desugaring, precedence,
// round-trip printing, and error reporting.

#include "sql/parser.h"

#include <gtest/gtest.h>

namespace conquer {
namespace {

std::unique_ptr<SelectStatement> Parse(const std::string& sql) {
  auto stmt = Parser::Parse(sql);
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString() << " for: " << sql;
  return stmt.ok() ? std::move(stmt).value() : nullptr;
}

TEST(ParserTest, MinimalSelect) {
  auto stmt = Parse("select a from t");
  ASSERT_NE(stmt, nullptr);
  ASSERT_EQ(stmt->select_list.size(), 1u);
  EXPECT_EQ(stmt->select_list[0].expr->column_name, "a");
  ASSERT_EQ(stmt->from.size(), 1u);
  EXPECT_EQ(stmt->from[0].table_name, "t");
  EXPECT_EQ(stmt->where, nullptr);
}

TEST(ParserTest, SelectStarIsEmptyList) {
  auto stmt = Parse("select * from t");
  ASSERT_NE(stmt, nullptr);
  EXPECT_TRUE(stmt->select_list.empty());
}

TEST(ParserTest, AliasesWithAndWithoutAs) {
  auto stmt = Parse("select a as x, b y from t1 u, t2 as v");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->select_list[0].alias, "x");
  EXPECT_EQ(stmt->select_list[1].alias, "y");
  EXPECT_EQ(stmt->from[0].alias, "u");
  EXPECT_EQ(stmt->from[1].alias, "v");
  EXPECT_EQ(stmt->from[1].effective_alias(), "v");
}

TEST(ParserTest, QualifiedColumnRefs) {
  auto stmt = Parse("select t.a from t");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->select_list[0].expr->table_alias, "t");
  EXPECT_EQ(stmt->select_list[0].expr->column_name, "a");
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto stmt = Parse("select a + b * c from t");
  const Expr& e = *stmt->select_list[0].expr;
  ASSERT_EQ(e.kind, Expr::Kind::kBinary);
  EXPECT_EQ(e.bop, BinaryOp::kAdd);
  EXPECT_EQ(e.right->bop, BinaryOp::kMul);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  auto stmt = Parse("select (a + b) * c from t");
  const Expr& e = *stmt->select_list[0].expr;
  EXPECT_EQ(e.bop, BinaryOp::kMul);
  EXPECT_EQ(e.left->bop, BinaryOp::kAdd);
}

TEST(ParserTest, BooleanPrecedenceOrBindsLoosest) {
  auto stmt = Parse("select a from t where x = 1 and y = 2 or z = 3");
  const Expr& w = *stmt->where;
  EXPECT_EQ(w.bop, BinaryOp::kOr);
  EXPECT_EQ(w.left->bop, BinaryOp::kAnd);
}

TEST(ParserTest, NotBindsTighterThanAnd) {
  auto stmt = Parse("select a from t where not x = 1 and y = 2");
  const Expr& w = *stmt->where;
  EXPECT_EQ(w.bop, BinaryOp::kAnd);
  EXPECT_EQ(w.left->kind, Expr::Kind::kUnary);
  EXPECT_EQ(w.left->uop, UnaryOp::kNot);
}

TEST(ParserTest, BetweenDesugarsToConjunction) {
  auto stmt = Parse("select a from t where a between 1 and 5");
  const Expr& w = *stmt->where;
  EXPECT_EQ(w.bop, BinaryOp::kAnd);
  EXPECT_EQ(w.left->bop, BinaryOp::kGe);
  EXPECT_EQ(w.right->bop, BinaryOp::kLe);
}

TEST(ParserTest, InListDesugarsToDisjunction) {
  auto stmt = Parse("select a from t where m in ('MAIL', 'SHIP', 'RAIL')");
  const Expr& w = *stmt->where;
  EXPECT_EQ(w.bop, BinaryOp::kOr);
  std::vector<const Expr*> leaves;
  CollectConjuncts(&w, &leaves);  // no ANDs: single conjunct
  ASSERT_EQ(leaves.size(), 1u);
}

TEST(ParserTest, NotLikeAndNotBetween) {
  auto stmt = Parse("select a from t where a not like 'x%' and b not in (1)");
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(stmt->where.get(), &conjuncts);
  ASSERT_EQ(conjuncts.size(), 2u);
  EXPECT_EQ(conjuncts[0]->kind, Expr::Kind::kUnary);
  EXPECT_EQ(conjuncts[0]->uop, UnaryOp::kNot);
  EXPECT_EQ(conjuncts[1]->uop, UnaryOp::kNot);
}

TEST(ParserTest, IsNullPredicates) {
  auto stmt = Parse("select a from t where a is null and b is not null");
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(stmt->where.get(), &conjuncts);
  ASSERT_EQ(conjuncts.size(), 2u);
  EXPECT_EQ(conjuncts[0]->uop, UnaryOp::kIsNull);
  EXPECT_EQ(conjuncts[1]->uop, UnaryOp::kIsNotNull);
}

TEST(ParserTest, DateLiteral) {
  auto stmt = Parse("select a from t where d < date '1995-03-15'");
  const Expr& lit = *stmt->where->right;
  EXPECT_EQ(lit.kind, Expr::Kind::kLiteral);
  EXPECT_EQ(lit.literal.type(), DataType::kDate);
  EXPECT_EQ(lit.literal.ToString(), "1995-03-15");
}

TEST(ParserTest, MalformedDateLiteralFails) {
  EXPECT_FALSE(Parser::Parse("select a from t where d < date 'xyz'").ok());
}

TEST(ParserTest, NegativeNumbersFoldToLiterals) {
  auto stmt = Parse("select a from t where a > -5 and b > -2.5");
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(stmt->where.get(), &conjuncts);
  EXPECT_EQ(conjuncts[0]->right->literal.int_value(), -5);
  EXPECT_DOUBLE_EQ(conjuncts[1]->right->literal.double_value(), -2.5);
}

TEST(ParserTest, AggregateCalls) {
  auto stmt =
      Parse("select count(*), sum(a * b), min(c) from t group by d");
  EXPECT_EQ(stmt->select_list[0].expr->agg, AggFunc::kCount);
  EXPECT_EQ(stmt->select_list[0].expr->left, nullptr);  // COUNT(*)
  EXPECT_EQ(stmt->select_list[1].expr->agg, AggFunc::kSum);
  EXPECT_EQ(stmt->select_list[1].expr->left->bop, BinaryOp::kMul);
  EXPECT_EQ(stmt->select_list[2].expr->agg, AggFunc::kMin);
  ASSERT_EQ(stmt->group_by.size(), 1u);
}

TEST(ParserTest, OrderByWithDirections) {
  auto stmt = Parse("select a, b from t order by a desc, b asc, a + b");
  ASSERT_EQ(stmt->order_by.size(), 3u);
  EXPECT_TRUE(stmt->order_by[0].descending);
  EXPECT_FALSE(stmt->order_by[1].descending);
  EXPECT_FALSE(stmt->order_by[2].descending);
}

TEST(ParserTest, DistinctAndLimit) {
  auto stmt = Parse("select distinct a from t limit 10");
  EXPECT_TRUE(stmt->distinct);
  EXPECT_EQ(stmt->limit, 10);
}

TEST(ParserTest, RoundTripThroughToString) {
  const char* queries[] = {
      "select a from t",
      "select t.a, t.b as x from t where (t.a = 1) and (t.b < 'z')",
      "select a from t1, t2 where (t1.x = t2.y) and (t1.z > 3) "
      "group by a order by a desc limit 5",
      "select sum(a.p * b.p) as clean_prob from a, b where a.x = b.id",
  };
  for (const char* sql : queries) {
    auto stmt = Parse(sql);
    ASSERT_NE(stmt, nullptr) << sql;
    std::string printed = stmt->ToString();
    auto reparsed = Parser::Parse(printed);
    ASSERT_TRUE(reparsed.ok()) << "reparsing failed: " << printed;
    EXPECT_EQ((*reparsed)->ToString(), printed) << "not a fixpoint: " << sql;
  }
}

TEST(ParserTest, ErrorsNameTheProblem) {
  auto r1 = Parser::Parse("selec a from t");
  EXPECT_FALSE(r1.ok());
  auto r2 = Parser::Parse("select a");
  EXPECT_FALSE(r2.ok());
  EXPECT_NE(r2.status().message().find("FROM"), std::string::npos);
  auto r3 = Parser::Parse("select a from t where");
  EXPECT_FALSE(r3.ok());
  // Note "from t xyz" is legal (xyz is a table alias); real trailing junk
  // after a complete statement must be rejected.
  auto r4 = Parser::Parse("select a from t limit 3 4");
  EXPECT_FALSE(r4.ok());
  EXPECT_NE(r4.status().message().find("trailing"), std::string::npos);
  auto r5 = Parser::Parse("select sum(a from t");
  EXPECT_FALSE(r5.ok());
  auto r6 = Parser::Parse("select a from t limit x");
  EXPECT_FALSE(r6.ok());
}

TEST(ParserTest, SubqueriesAreRejectedWithClearMessage) {
  auto r = Parser::Parse(
      "select a from t where exists (select 1 from u)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("not supported"), std::string::npos);
}

TEST(ParserTest, HavingIsRejected) {
  auto r = Parser::Parse("select a from t group by a having a > 1");
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, ExplainPrefixesParse) {
  auto plain = Parser::ParseStatement("select a from t");
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ(plain->explain, ExplainMode::kNone);
  ASSERT_NE(plain->select, nullptr);

  auto explain = Parser::ParseStatement("explain select a from t");
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_EQ(explain->explain, ExplainMode::kPlan);
  ASSERT_NE(explain->select, nullptr);
  EXPECT_EQ(explain->select->select_list[0].expr->column_name, "a");

  auto analyze = Parser::ParseStatement("EXPLAIN ANALYZE select a from t");
  ASSERT_TRUE(analyze.ok()) << analyze.status().ToString();
  EXPECT_EQ(analyze->explain, ExplainMode::kAnalyze);
  ASSERT_NE(analyze->select, nullptr);
}

TEST(ParserTest, WriteWordsRemainValidIdentifiers) {
  // INSERT/INTO/VALUES/UPDATE/SET/DELETE are soft keywords: SELECT
  // workloads that predate the write path keep using them unquoted as
  // column and table names.
  auto stmt = Parse("select values, set, insert x from update where delete = 1");
  ASSERT_NE(stmt, nullptr);
  ASSERT_EQ(stmt->select_list.size(), 3u);
  EXPECT_EQ(stmt->select_list[0].expr->column_name, "values");
  EXPECT_EQ(stmt->select_list[1].expr->column_name, "set");
  EXPECT_EQ(stmt->select_list[2].expr->column_name, "insert");
  EXPECT_EQ(stmt->select_list[2].alias, "x");
  EXPECT_EQ(stmt->from[0].table_name, "update");
  ASSERT_NE(stmt->where, nullptr);
}

TEST(ParserTest, SoftKeywordsStillDriveWriteStatements) {
  auto ins = Parser::ParseStatement("Insert into into values (1)");
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  EXPECT_EQ(ins->kind, StatementKind::kInsert);
  EXPECT_EQ(ins->insert->table_name, "into");

  // A table and a column both named "set" parse around the SET clause.
  auto upd = Parser::ParseStatement("update set set set = 1");
  ASSERT_TRUE(upd.ok()) << upd.status().ToString();
  EXPECT_EQ(upd->kind, StatementKind::kUpdate);
  EXPECT_EQ(upd->update->table_name, "set");
  ASSERT_EQ(upd->update->assignments.size(), 1u);
  EXPECT_EQ(upd->update->assignments[0].column, "set");

  auto del = Parser::ParseStatement("DELETE FROM values");
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  EXPECT_EQ(del->kind, StatementKind::kDelete);
  EXPECT_EQ(del->del->table_name, "values");
}

TEST(ParserTest, ExplainRequiresASelect) {
  EXPECT_FALSE(Parser::ParseStatement("explain").ok());
  EXPECT_FALSE(Parser::ParseStatement("explain analyze").ok());
  EXPECT_FALSE(Parser::ParseStatement("analyze select a from t").ok());
}

TEST(ParserTest, CloneProducesDeepCopy) {
  auto stmt = Parse("select a, sum(b) from t where c = 1 group by a "
                    "order by a desc limit 3");
  auto copy = stmt->Clone();
  EXPECT_EQ(copy->ToString(), stmt->ToString());
  // Mutating the copy leaves the original untouched.
  copy->select_list.pop_back();
  copy->limit = 99;
  EXPECT_NE(copy->ToString(), stmt->ToString());
}

TEST(ParserTest, ParamPlaceholdersNumberedInLexicalOrder) {
  auto stmt = Parse("select a from t where x > ? and y = ? or z < ?");
  EXPECT_EQ(stmt->num_params, 3);
  // The WHERE tree is ((x > ?0 AND y = ?1) OR z < ?2).
  const Expr* root = stmt->where.get();
  ASSERT_NE(root, nullptr);
  const Expr* p0 = root->left->left->right.get();
  const Expr* p2 = root->right->right.get();
  ASSERT_EQ(p0->kind, Expr::Kind::kParameter);
  EXPECT_EQ(p0->param_index, 0);
  ASSERT_EQ(p2->kind, Expr::Kind::kParameter);
  EXPECT_EQ(p2->param_index, 2);
}

TEST(ParserTest, ParamPlaceholderPrintsAndClones) {
  auto stmt = Parse("select a from t where x = ?");
  EXPECT_NE(stmt->ToString().find("x = ?"), std::string::npos);
  auto copy = stmt->Clone();
  EXPECT_EQ(copy->num_params, 1);
  EXPECT_TRUE(copy->where->StructurallyEquals(*stmt->where));
}

TEST(ParserTest, NoParamsReportsZero) {
  EXPECT_EQ(Parse("select a from t where x = 1")->num_params, 0);
}

TEST(ParserTest, StructuralEqualityIgnoresUnboundAnnotations) {
  auto a = Parse("select x + 1 from t");
  auto b = Parse("select x + 1 from t");
  auto c = Parse("select x + 2 from t");
  EXPECT_TRUE(a->select_list[0].expr->StructurallyEquals(
      *b->select_list[0].expr));
  EXPECT_FALSE(a->select_list[0].expr->StructurallyEquals(
      *c->select_list[0].expr));
}

}  // namespace
}  // namespace conquer
