// Unit tests for SQL normalization (the plan-cache key).

#include "sql/normalize.h"

#include <gtest/gtest.h>

namespace conquer {
namespace {

std::string Norm(const std::string& sql) {
  auto r = NormalizeSql(sql);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << " for: " << sql;
  return r.ok() ? std::move(r).value() : std::string();
}

TEST(NormalizeTest, CollapsesWhitespaceAndUppercasesKeywords) {
  EXPECT_EQ(Norm("select  a\n\tfrom   T"), "SELECT a FROM T");
}

TEST(NormalizeTest, TextualVariantsShareOneKey) {
  const std::string key = Norm("select a from t where x <> 3");
  EXPECT_EQ(Norm("select   a\nfrom t  where x != 3"), key);
  EXPECT_EQ(Norm("SELECT a FROM t WHERE x<>3"), key);
}

TEST(NormalizeTest, IdentifierCaseIsPreserved) {
  EXPECT_NE(Norm("select Foo from t"), Norm("select foo from t"));
}

TEST(NormalizeTest, LiteralsStayInTheKey) {
  EXPECT_NE(Norm("select a from t where x = 1"),
            Norm("select a from t where x = 2"));
}

TEST(NormalizeTest, StringLiteralsRequoted) {
  EXPECT_EQ(Norm("select a from t where s = 'it''s'"),
            "SELECT a FROM t WHERE s = 'it''s'");
  // A string literal can never collide with an identifier.
  EXPECT_NE(Norm("select a from t where s = 'b'"),
            Norm("select a from t where s = b"));
}

TEST(NormalizeTest, ParamsAndPunctuationGlue) {
  EXPECT_EQ(Norm("select sum( x ) , t . y from t where a=?"),
            "SELECT SUM(x), t.y FROM t WHERE a = ?");
}

TEST(NormalizeTest, RejectsWhatTheLexerRejects) {
  EXPECT_FALSE(NormalizeSql("select #").ok());
}

}  // namespace
}  // namespace conquer
