// Tests of the pin/evict buffer pool: budget enforcement, pin semantics,
// dirty spills and concurrent pinning.

#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "storage/table.h"

namespace conquer {
namespace {

// ---- ParseByteSize ---------------------------------------------------------

TEST(ParseByteSize, AcceptsPlainAndSuffixedForms) {
  uint64_t b = 0;
  EXPECT_TRUE(ParseByteSize("0", &b));
  EXPECT_EQ(b, 0u);
  EXPECT_TRUE(ParseByteSize("12345", &b));
  EXPECT_EQ(b, 12345u);
  EXPECT_TRUE(ParseByteSize("4k", &b));
  EXPECT_EQ(b, 4096u);
  EXPECT_TRUE(ParseByteSize("64m", &b));
  EXPECT_EQ(b, 64ull << 20);
  EXPECT_TRUE(ParseByteSize("2g", &b));
  EXPECT_EQ(b, 2ull << 30);
  EXPECT_TRUE(ParseByteSize("8KB", &b));
  EXPECT_EQ(b, 8192u);
  EXPECT_TRUE(ParseByteSize("1Gb", &b));
  EXPECT_EQ(b, 1ull << 30);
  EXPECT_TRUE(ParseByteSize(" 16m ", &b));
  EXPECT_EQ(b, 16ull << 20);
}

TEST(ParseByteSize, UnlimitedSpellingsMeanZero) {
  for (const char* s : {"unlimited", "none", "off", "UNLIMITED"}) {
    uint64_t b = 1;
    EXPECT_TRUE(ParseByteSize(s, &b)) << s;
    EXPECT_EQ(b, 0u) << s;
  }
}

TEST(ParseByteSize, RejectsMalformedInput) {
  uint64_t b = 0;
  EXPECT_FALSE(ParseByteSize("", &b));
  EXPECT_FALSE(ParseByteSize("m", &b));
  EXPECT_FALSE(ParseByteSize("12x", &b));
  EXPECT_FALSE(ParseByteSize("-5", &b));
  EXPECT_FALSE(ParseByteSize("1.5g", &b));
  EXPECT_FALSE(ParseByteSize("12kmb", &b));
}

TEST(ParseByteSize, RejectsOverflowInsteadOfWrapping) {
  // A typo'd huge budget must be rejected, not silently wrapped to a tiny
  // one (which would turn the typo into aggressive eviction).
  uint64_t b = 0;
  EXPECT_FALSE(ParseByteSize("99999999999999999999999", &b));  // digit loop
  EXPECT_FALSE(ParseByteSize("20000000000g", &b));             // multiplier
  EXPECT_FALSE(ParseByteSize("18446744073709551616", &b));     // 2^64
  // Large but representable values still parse.
  EXPECT_TRUE(ParseByteSize("18446744073709551615", &b));      // 2^64 - 1
  EXPECT_EQ(b, UINT64_MAX);
  EXPECT_TRUE(ParseByteSize("8589934591g", &b));  // (2^33 - 1) GiB fits
  EXPECT_EQ(b, ((1ull << 33) - 1) << 30);
}

// ---- Pool behaviour through a Database -------------------------------------

/// A table with `chunks` chunks of 64 rows each: an int, a string (so the
/// payload carries dictionary codes) and a double column.
void FillTable(Database* db, size_t chunks) {
  ASSERT_TRUE(db->CreateTable(TableSchema("t", {{"a", DataType::kInt64},
                                                {"s", DataType::kString},
                                                {"p", DataType::kDouble}}))
                  .ok());
  const size_t rows = chunks * 64;
  std::vector<Row> batch;
  for (size_t i = 0; i < rows; ++i) {
    batch.push_back({Value::Int(static_cast<int64_t>(i)),
                     Value::String("name_" + std::to_string(i % 97)),
                     Value::Double(static_cast<double>(i) * 0.5)});
  }
  ASSERT_TRUE(db->InsertMany("t", std::move(batch)).ok());
  Table* t = *db->GetTable("t");
  t->Rechunk(64);
  ASSERT_EQ(t->num_chunks(), chunks);
}

int64_t SumA(const Database& db) {
  auto rs = db.Query("select sum(a) from t");
  EXPECT_TRUE(rs.ok()) << rs.status().ToString();
  return rs->rows[0][0].int_value();
}

TEST(BufferPoolTest, TinyBudgetEvictsColdChunksAndAnswersStayCorrect) {
  Database db;
  db.SetMemoryBudget(0);
  FillTable(&db, 8);
  const int64_t expect = SumA(db);

  // One byte of budget: nothing unpinned may stay resident. Each scan then
  // faults every chunk back in and evicts it again behind the cursor.
  db.SetMemoryBudget(1);
  const BufferPool::Stats after_evict = db.buffer_pool()->stats();
  EXPECT_GE(after_evict.chunks_evicted, 8u);
  EXPECT_EQ(after_evict.resident_bytes, 0u);
  // Never persisted, so the dirty payloads all went through the spill file.
  EXPECT_GE(after_evict.chunks_spilled, 8u);

  for (int pass = 0; pass < 3; ++pass) {
    EXPECT_EQ(SumA(db), expect) << "pass " << pass;
  }
  EXPECT_GE(db.buffer_pool()->stats().chunks_loaded, 24u);
}

TEST(BufferPoolTest, PinnedChunksAreExemptFromEviction) {
  Database db;
  db.SetMemoryBudget(0);
  FillTable(&db, 4);
  Table* t = *db.GetTable("t");

  ChunkPin pin = t->PinChunk(0);
  const uint64_t resident_before = db.buffer_pool()->stats().resident_bytes;
  ASSERT_GT(resident_before, 0u);

  db.SetMemoryBudget(1);
  const BufferPool::Stats st = db.buffer_pool()->stats();
  // Chunks 1..3 were evicted; the pinned chunk 0 must still be charged and
  // its payload must still be readable through the pin.
  EXPECT_EQ(st.chunks_evicted, 3u);
  EXPECT_GT(st.resident_bytes, 0u);
  EXPECT_LT(st.resident_bytes, resident_before);
  EXPECT_EQ(pin->column(0).fixed_data()[5], 5);

  // Releasing the pin makes it evictable: the next enforcement point (a pin
  // of some other chunk) pushes the pool down to the budget.
  pin.Reset();
  { ChunkPin other = t->PinChunk(3); }
  EXPECT_EQ(db.buffer_pool()->stats().resident_bytes, 0u);
  EXPECT_EQ(db.buffer_pool()->stats().chunks_evicted, 5u);
}

TEST(BufferPoolTest, DirtySpillPreservesStampsAndDictionaryCodes) {
  Database db;
  db.SetMemoryBudget(0);
  FillTable(&db, 4);

  // In-place writes dirty their chunks and stamp fresh MVCC versions.
  ASSERT_TRUE(db.ExecuteWrite("update t set s = 'renamed' where a = 10").ok());
  ASSERT_TRUE(db.ExecuteWrite("delete from t where a = 20").ok());
  Table* t = *db.GetTable("t");
  const uint64_t version = t->committed_version();
  const size_t visible = t->VisibleRowPositions(version).size();

  auto before = db.Query("select a, s, p from t order by a");
  ASSERT_TRUE(before.ok());

  // Spill everything, then fault it back.
  db.SetMemoryBudget(1);
  ASSERT_GE(db.buffer_pool()->stats().chunks_spilled, 4u);
  db.SetMemoryBudget(0);

  EXPECT_EQ(t->committed_version(), version);
  EXPECT_EQ(t->VisibleRowPositions(version).size(), visible);
  auto after = db.Query("select a, s, p from t order by a");
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(before->rows.size(), after->rows.size());
  for (size_t r = 0; r < before->rows.size(); ++r) {
    for (size_t c = 0; c < before->rows[r].size(); ++c) {
      EXPECT_EQ(before->rows[r][c].TotalCompare(after->rows[r][c]), 0)
          << "row " << r << " col " << c;
    }
  }
  auto renamed = db.Query("select s from t where a = 10");
  ASSERT_TRUE(renamed.ok());
  ASSERT_EQ(renamed->rows.size(), 1u);
  EXPECT_EQ(renamed->rows[0][0].string_value(), "renamed");
}

TEST(BufferPoolTest, BudgetLargerThanOneChunkKeepsHotChunkResident) {
  Database db;
  db.SetMemoryBudget(0);
  FillTable(&db, 4);
  Table* t = *db.GetTable("t");

  // Budget = one chunk's payload: repeated pins of the same chunk must not
  // thrash (a pinned chunk never evicts itself to make room for itself).
  uint64_t one_chunk = 0;
  {
    ChunkPin pin = t->PinChunk(0);
    one_chunk = db.buffer_pool()->stats().resident_bytes / 4;
  }
  ASSERT_GT(one_chunk, 0u);
  db.SetMemoryBudget(one_chunk);

  const uint64_t loads_before = db.buffer_pool()->stats().chunks_loaded;
  for (int i = 0; i < 10; ++i) {
    ChunkPin pin = t->PinChunk(2);
    EXPECT_EQ(pin->column(0).fixed_data()[0], 2 * 64);
  }
  // First pin may fault chunk 2 in; the other nine must hit.
  EXPECT_LE(db.buffer_pool()->stats().chunks_loaded, loads_before + 1);
}

TEST(BufferPoolTest, DirtyReEvictionReusesSpillExtents) {
  Database db;
  db.SetMemoryBudget(0);
  FillTable(&db, 4);
  Table* t = *db.GetTable("t");

  // First spill of all four dirty chunks sizes the spill file.
  db.SetMemoryBudget(1);
  const uint64_t first = db.buffer_pool()->stats().spill_file_bytes;
  ASSERT_GT(first, 0u);

  // Re-dirty and re-evict every chunk repeatedly: each SetValue faults the
  // chunk in, marks it dirty, and the unpin under the 1-byte budget spills
  // it again. Same-size payloads must rewrite their extent in place, so the
  // spill file stops growing after the first round — the append-only
  // regression grew it by four payloads per cycle, without bound.
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (size_t c = 0; c < 4; ++c) {
      t->SetValue(c * 64, 2, Value::Double(cycle * 10.0 + c));
    }
  }
  const BufferPool::Stats st = db.buffer_pool()->stats();
  EXPECT_GE(st.chunks_spilled, 24u);  // 4 initial + 4 per cycle
  EXPECT_EQ(st.spill_file_bytes, first);

  // And the data survived all that extent recycling.
  auto rs = db.Query("select p from t where a = 192");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].double_value(), 43.0);  // cycle 4, chunk 3
}

TEST(BufferPoolTest, DyingChunksReturnTheirSpillExtents) {
  Database db;
  db.SetMemoryBudget(0);
  FillTable(&db, 4);
  Table* t = *db.GetTable("t");
  db.SetMemoryBudget(1);  // spill all four chunks
  ASSERT_GT(db.buffer_pool()->stats().spill_file_bytes, 0u);

  // Rechunk rebuilds storage: the destination chunks spill while the old
  // ones still hold their extents (the file grows once), then the dying
  // old chunks hand their extents back to the free list.
  t->Rechunk(64);
  const uint64_t after_rechunk = db.buffer_pool()->stats().spill_file_bytes;

  // Appending four more chunks' worth of rows spills fresh payloads; they
  // must land in the freed extents instead of growing the file again.
  std::vector<Row> batch;
  for (size_t i = 4 * 64; i < 8 * 64; ++i) {
    batch.push_back({Value::Int(static_cast<int64_t>(i)),
                     Value::String("name_" + std::to_string(i % 97)),
                     Value::Double(static_cast<double>(i) * 0.5)});
  }
  ASSERT_TRUE(db.InsertMany("t", std::move(batch)).ok());

  const int64_t expect = (8 * 64 - 1) * (8 * 64) / 2;
  EXPECT_EQ(SumA(db), expect);
  EXPECT_LE(db.buffer_pool()->stats().spill_file_bytes, after_rechunk);
}

TEST(BufferPoolTest, ConcurrentPinsUnderTinyBudgetAreSafe) {
  Database db;
  db.SetMemoryBudget(0);
  FillTable(&db, 8);
  const int64_t expect = SumA(db);
  db.SetMemoryBudget(1);
  db.SetThreads(4);

  constexpr int kThreads = 4;
  constexpr int kPasses = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&] {
      for (int p = 0; p < kPasses; ++p) {
        auto rs = db.Query("select sum(a) from t");
        if (!rs.ok() || rs->rows[0][0].int_value() != expect) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace conquer
