// Unit tests for the storage layer: schemas, tables, indexes, statistics,
// and the catalog.

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "storage/table.h"

namespace conquer {
namespace {

TableSchema MakeSchema() {
  return TableSchema("t", {{"a", DataType::kInt64},
                           {"b", DataType::kString},
                           {"c", DataType::kDouble}});
}

/// Probes every chunk of `table`'s index on `column` for `key` under scan
/// equality, returning global positions (mirrors IndexScanOp's walk).
std::vector<size_t> IndexLookup(const Table& table, size_t column,
                                const Value& key) {
  const ChunkIndex* idx = table.GetIndex(column);
  EXPECT_NE(idx, nullptr);
  bool unsupported = false;
  const ChunkIndex::ProbeSpec probe =
      idx->ResolveProbe(key, table.dictionary(column),
                        /*join_semantics=*/false, &unsupported);
  EXPECT_FALSE(unsupported);
  std::vector<size_t> out;
  for (size_t c = 0; c < table.num_chunks(); ++c) {
    std::vector<uint32_t> local;
    table.IndexProbeChunk(column, probe, /*scan_semantics=*/true, c, &local,
                          nullptr);
    for (uint32_t r : local) out.push_back(c * table.chunk_capacity() + r);
  }
  return out;
}

TEST(SchemaTest, ColumnLookupIsCaseInsensitive) {
  TableSchema schema = MakeSchema();
  EXPECT_EQ(schema.FindColumn("a"), 0u);
  EXPECT_EQ(schema.FindColumn("B"), 1u);
  EXPECT_FALSE(schema.FindColumn("z").has_value());
  auto idx = schema.GetColumnIndex("C");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 2u);
  EXPECT_EQ(schema.GetColumnIndex("nope").status().code(),
            StatusCode::kNotFound);
}

TEST(SchemaTest, AddColumnRejectsDuplicates) {
  TableSchema schema = MakeSchema();
  EXPECT_TRUE(schema.AddColumn({"d", DataType::kBool}).ok());
  EXPECT_EQ(schema.AddColumn({"A", DataType::kBool}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(schema.num_columns(), 4u);
}

TEST(TableTest, InsertValidatesArityAndTypes) {
  Table table(MakeSchema());
  EXPECT_TRUE(
      table.Insert({Value::Int(1), Value::String("x"), Value::Double(0.5)})
          .ok());
  // Wrong arity.
  EXPECT_EQ(table.Insert({Value::Int(1)}).code(),
            StatusCode::kInvalidArgument);
  // Wrong type.
  EXPECT_EQ(
      table.Insert({Value::String("no"), Value::String("x"), Value::Double(1)})
          .code(),
      StatusCode::kTypeError);
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(TableTest, IntWidensIntoDoubleColumns) {
  Table table(MakeSchema());
  ASSERT_TRUE(
      table.Insert({Value::Int(1), Value::String("x"), Value::Int(7)}).ok());
  EXPECT_EQ(table.row(0)[2].type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(table.row(0)[2].double_value(), 7.0);
}

TEST(TableTest, NullsFitAnyColumn) {
  Table table(MakeSchema());
  EXPECT_TRUE(
      table.Insert({Value::Null(), Value::Null(), Value::Null()}).ok());
}

TEST(TableTest, IndexLookupFindsAllMatches) {
  Table table(MakeSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(table
                    .Insert({Value::Int(i % 3), Value::String("r"),
                             Value::Double(i)})
                    .ok());
  }
  ASSERT_TRUE(table.CreateIndex("a").ok());
  const ChunkIndex* idx = table.GetIndex(0);
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->approx_num_keys(), 3u);
  EXPECT_EQ(IndexLookup(table, 0, Value::Int(0)).size(), 4u);  // 0,3,6,9
  EXPECT_EQ(IndexLookup(table, 0, Value::Int(2)).size(), 3u);
  EXPECT_TRUE(IndexLookup(table, 0, Value::Int(99)).empty());
}

TEST(TableTest, IndexIsMaintainedByLaterInserts) {
  Table table(MakeSchema());
  ASSERT_TRUE(table.CreateIndex("a").ok());
  ASSERT_TRUE(
      table.Insert({Value::Int(5), Value::String("x"), Value::Double(0)})
          .ok());
  EXPECT_EQ(IndexLookup(table, 0, Value::Int(5)).size(), 1u);
}

TEST(TableTest, CreateIndexOnUnknownColumnFails) {
  Table table(MakeSchema());
  EXPECT_EQ(table.CreateIndex("zzz").code(), StatusCode::kNotFound);
}

TEST(TableTest, StatisticsCountDistinctAndNulls) {
  Table table(MakeSchema());
  ASSERT_TRUE(
      table.Insert({Value::Int(1), Value::String("x"), Value::Null()}).ok());
  ASSERT_TRUE(
      table.Insert({Value::Int(1), Value::String("y"), Value::Null()}).ok());
  ASSERT_TRUE(
      table.Insert({Value::Int(2), Value::String("x"), Value::Double(1)})
          .ok());
  table.AnalyzeStatistics();
  EXPECT_EQ(table.column_stats(0).num_distinct, 2u);
  EXPECT_EQ(table.column_stats(1).num_distinct, 2u);
  EXPECT_EQ(table.column_stats(2).num_nulls, 2u);
  EXPECT_EQ(table.column_stats(2).num_distinct, 1u);
}

TEST(TableTest, ClearResetsEverything) {
  Table table(MakeSchema());
  ASSERT_TRUE(
      table.Insert({Value::Int(1), Value::String("x"), Value::Double(0)})
          .ok());
  ASSERT_TRUE(table.CreateIndex("a").ok());
  table.Clear();
  EXPECT_EQ(table.num_rows(), 0u);
  EXPECT_EQ(table.GetIndex(0), nullptr);
}

TEST(CatalogTest, CreateLookupDrop) {
  Catalog catalog;
  auto t = catalog.CreateTable(MakeSchema());
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(catalog.HasTable("T"));  // case-insensitive
  EXPECT_TRUE(catalog.GetTable("t").ok());
  EXPECT_EQ(catalog.GetTable("u").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.CreateTable(MakeSchema()).status().code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(catalog.DropTable("t").ok());
  EXPECT_FALSE(catalog.HasTable("t"));
  EXPECT_EQ(catalog.DropTable("t").code(), StatusCode::kNotFound);
}

TEST(CatalogTest, TableNamesPreserveCreationOrder) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable(TableSchema("zeta", {{"x", DataType::kInt64}}))
                  .ok());
  ASSERT_TRUE(
      catalog.CreateTable(TableSchema("alpha", {{"x", DataType::kInt64}}))
          .ok());
  auto names = catalog.TableNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "zeta");
  EXPECT_EQ(names[1], "alpha");
}

}  // namespace
}  // namespace conquer
