// Unit tests for the equi-depth histogram: exact cumulative counts at
// bucket boundaries, bounded interpolation error inside buckets, and the
// per-bucket distinct counts the equality estimate relies on.

#include "storage/histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace conquer {
namespace {

std::vector<double> Ramp(int n) {
  std::vector<double> v;
  v.reserve(n);
  for (int i = 0; i < n; ++i) v.push_back(static_cast<double>(i));
  return v;
}

TEST(HistogramTest, BucketBoundaryEstimatesAreExact) {
  // 1000 distinct values 0..999 across 10 buckets of depth 100.
  Histogram h = Histogram::Build(Ramp(1000), /*max_buckets=*/10);
  ASSERT_FALSE(h.empty());
  EXPECT_EQ(h.total(), 1000u);
  uint64_t cumulative = 0;
  for (const Histogram::Bucket& b : h.buckets()) {
    // Rows strictly below the bucket == the prefix before it, exactly.
    EXPECT_DOUBLE_EQ(h.EstimateLess(b.lower), static_cast<double>(cumulative))
        << "at lower bound " << b.lower;
    cumulative += b.count;
    // Rows at-or-below the bucket's upper bound == the prefix through it.
    EXPECT_DOUBLE_EQ(h.EstimateLessEqual(b.upper),
                     static_cast<double>(cumulative))
        << "at upper bound " << b.upper;
  }
  EXPECT_EQ(cumulative, 1000u);
}

TEST(HistogramTest, InteriorEstimatesOffByAtMostOneBucketDepth) {
  Histogram h = Histogram::Build(Ramp(1000), /*max_buckets=*/10);
  // True count of values <= x for the 0..999 ramp is floor(x) + 1.
  for (double x = 0.5; x < 1000.0; x += 13.25) {
    const double truth = std::floor(x) + 1.0;
    const double est = h.EstimateLessEqual(x);
    EXPECT_LE(std::fabs(est - truth), 100.0) << "at x = " << x;
  }
  // Out-of-range probes clamp to the exact extremes.
  EXPECT_DOUBLE_EQ(h.EstimateLessEqual(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.EstimateLess(5000.0), 1000.0);
}

TEST(HistogramTest, EqualityUsesPerBucketDistinctCounts) {
  // All-distinct column: every equality estimates ~1 row.
  Histogram uni = Histogram::Build(Ramp(256), /*max_buckets=*/8);
  EXPECT_NEAR(uni.EstimateEqual(17.0), 1.0, 1e-9);
  // Heavy hitter: 500 copies of 7 among 100 other singletons. The bucket
  // holding 7 is dominated by it, so the estimate must reflect the skew.
  std::vector<double> skew(500, 7.0);
  for (int i = 0; i < 100; ++i) skew.push_back(1000.0 + i);
  Histogram h = Histogram::Build(std::move(skew), /*max_buckets=*/8);
  EXPECT_GE(h.EstimateEqual(7.0), 100.0);
  // A value outside every bucket estimates zero.
  EXPECT_DOUBLE_EQ(h.EstimateEqual(-50.0), 0.0);
}

TEST(HistogramTest, SingleValueNeverStraddlesBuckets) {
  // 1000 copies of one value must land in one bucket even when the target
  // depth (1100/8 ~ 137) is far smaller: equi-depth boundaries stretch.
  std::vector<double> vals(1000, 42.5);
  for (int i = 0; i < 50; ++i) vals.push_back(static_cast<double>(i));
  for (int i = 0; i < 50; ++i) vals.push_back(100.0 + i);
  Histogram h = Histogram::Build(std::move(vals), /*max_buckets=*/8);
  int holders = 0;
  uint64_t holder_count = 0;
  for (const Histogram::Bucket& b : h.buckets()) {
    if (b.lower <= 42.5 && 42.5 <= b.upper) {
      ++holders;
      holder_count = b.count;
    }
  }
  EXPECT_EQ(holders, 1);
  // All 1000 copies sit in that single bucket (plus whatever ramp values
  // the stretched boundary swallowed) — none leaked into a neighbour.
  EXPECT_GE(holder_count, 1000u);
}

TEST(HistogramTest, EmptyAndDegenerateInputs) {
  Histogram empty = Histogram::Build({});
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.total(), 0u);
  // NaNs have no ordering position and are dropped at build time.
  Histogram h = Histogram::Build({1.0, std::nan(""), 2.0});
  EXPECT_EQ(h.total(), 2u);
  // Single-value histogram: boundaries degenerate but estimates hold.
  Histogram one = Histogram::Build({5.0, 5.0, 5.0});
  EXPECT_DOUBLE_EQ(one.EstimateEqual(5.0), 3.0);
  EXPECT_DOUBLE_EQ(one.EstimateLess(5.0), 0.0);
  EXPECT_DOUBLE_EQ(one.EstimateLessEqual(5.0), 3.0);
}

}  // namespace
}  // namespace conquer
