// Unit tests for the per-column string dictionary: round-trips, code
// stability (AnalyzeStatistics may re-intern freely), pointer stability as
// the pool grows, and NULL handling through Table::Insert.

#include "storage/dictionary.h"

#include <gtest/gtest.h>

#include <string>

#include "storage/table.h"

namespace conquer {
namespace {

TEST(StringDictionaryTest, RoundTripAndCodeStability) {
  StringDictionary dict;
  uint32_t a = dict.Intern("alpha");
  uint32_t b = dict.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.size(), 2u);

  // Re-interning an existing string returns the original code.
  EXPECT_EQ(dict.Intern("alpha"), a);
  EXPECT_EQ(dict.Intern("beta"), b);
  EXPECT_EQ(dict.size(), 2u);

  EXPECT_EQ(*dict.StringAt(a), "alpha");
  Value v = dict.ValueAt(b);
  EXPECT_TRUE(v.is_interned());
  EXPECT_EQ(v.string_value(), "beta");
  EXPECT_EQ(v.interned_ptr(), dict.StringAt(b));
}

TEST(StringDictionaryTest, FindDoesNotIntern) {
  StringDictionary dict;
  EXPECT_EQ(dict.Find("missing"), StringDictionary::kInvalidCode);
  EXPECT_EQ(dict.size(), 0u);

  uint32_t c = dict.Intern("x");
  EXPECT_EQ(dict.Find("x"), c);
  EXPECT_EQ(dict.Find(""), StringDictionary::kInvalidCode);
  uint32_t empty = dict.Intern("");  // empty string is a valid entry
  EXPECT_EQ(dict.Find(""), empty);
}

TEST(StringDictionaryTest, PointersSurviveGrowth) {
  StringDictionary dict;
  const std::string* first = dict.StringAt(dict.Intern("first"));
  for (int i = 0; i < 10000; ++i) dict.Intern("s" + std::to_string(i));
  // Entry storage is a deque: the pointer handed out before 10k further
  // interns (and the rehashes they force) must still be valid.
  EXPECT_EQ(dict.StringAt(0), first);
  EXPECT_EQ(*first, "first");
}

TEST(TableDictionaryTest, InsertInternsStringsAndKeepsNulls) {
  Table table(TableSchema(
      "t", {{"s", DataType::kString}, {"n", DataType::kInt64}}));
  ASSERT_TRUE(table.Insert({Value::String("dup"), Value::Int(1)}).ok());
  ASSERT_TRUE(table.Insert({Value::String("dup"), Value::Int(2)}).ok());
  ASSERT_TRUE(table.Insert({Value::Null(), Value::Int(3)}).ok());

  const StringDictionary* dict = table.dictionary(0);
  ASSERT_NE(dict, nullptr);
  EXPECT_EQ(dict->size(), 1u);               // "dup" stored once
  EXPECT_EQ(table.dictionary(1), nullptr);   // INT64 column: no dictionary

  // Both string rows share the interned storage; NULL stays NULL.
  ASSERT_TRUE(table.row(0)[0].is_interned());
  ASSERT_TRUE(table.row(1)[0].is_interned());
  EXPECT_EQ(table.row(0)[0].interned_ptr(), table.row(1)[0].interned_ptr());
  EXPECT_TRUE(table.row(2)[0].is_null());
}

TEST(TableDictionaryTest, CodesStableAcrossAnalyzeStatistics) {
  Table table(TableSchema("t", {{"s", DataType::kString}}));
  ASSERT_TRUE(table.Insert({Value::String("a")}).ok());
  ASSERT_TRUE(table.Insert({Value::String("b")}).ok());

  const StringDictionary* dict = table.dictionary(0);
  ASSERT_NE(dict, nullptr);
  uint32_t code_a = dict->Find("a");
  uint32_t code_b = dict->Find("b");
  ASSERT_NE(code_a, StringDictionary::kInvalidCode);
  ASSERT_NE(code_b, StringDictionary::kInvalidCode);

  // AnalyzeStatistics may re-intern every row; existing codes (and the
  // interned pointers built from them) must not move.
  const std::string* ptr_a = dict->StringAt(code_a);
  table.AnalyzeStatistics();
  table.AnalyzeStatistics();  // idempotent
  EXPECT_EQ(dict->Find("a"), code_a);
  EXPECT_EQ(dict->Find("b"), code_b);
  EXPECT_EQ(dict->StringAt(code_a), ptr_a);
  EXPECT_EQ(table.row(0)[0].interned_ptr(), ptr_a);
}

}  // namespace
}  // namespace conquer
