// Unit tests for the per-column string dictionary: round-trips, code
// stability (AnalyzeStatistics may re-intern freely), pointer stability as
// the pool grows, and NULL handling through Table::Insert.

#include "storage/dictionary.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "storage/table.h"

namespace conquer {
namespace {

TEST(StringDictionaryTest, RoundTripAndCodeStability) {
  StringDictionary dict;
  uint32_t a = dict.Intern("alpha");
  uint32_t b = dict.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.size(), 2u);

  // Re-interning an existing string returns the original code.
  EXPECT_EQ(dict.Intern("alpha"), a);
  EXPECT_EQ(dict.Intern("beta"), b);
  EXPECT_EQ(dict.size(), 2u);

  EXPECT_EQ(*dict.StringAt(a), "alpha");
  Value v = dict.ValueAt(b);
  EXPECT_TRUE(v.is_interned());
  EXPECT_EQ(v.string_value(), "beta");
  EXPECT_EQ(v.interned_ptr(), dict.StringAt(b));
}

TEST(StringDictionaryTest, FindDoesNotIntern) {
  StringDictionary dict;
  EXPECT_EQ(dict.Find("missing"), StringDictionary::kInvalidCode);
  EXPECT_EQ(dict.size(), 0u);

  uint32_t c = dict.Intern("x");
  EXPECT_EQ(dict.Find("x"), c);
  EXPECT_EQ(dict.Find(""), StringDictionary::kInvalidCode);
  uint32_t empty = dict.Intern("");  // empty string is a valid entry
  EXPECT_EQ(dict.Find(""), empty);
}

TEST(StringDictionaryTest, PointersSurviveGrowth) {
  StringDictionary dict;
  const std::string* first = dict.StringAt(dict.Intern("first"));
  for (int i = 0; i < 10000; ++i) dict.Intern("s" + std::to_string(i));
  // Entry storage is a deque: the pointer handed out before 10k further
  // interns (and the rehashes they force) must still be valid.
  EXPECT_EQ(dict.StringAt(0), first);
  EXPECT_EQ(*first, "first");
}

TEST(TableDictionaryTest, InsertInternsStringsAndKeepsNulls) {
  Table table(TableSchema(
      "t", {{"s", DataType::kString}, {"n", DataType::kInt64}}));
  ASSERT_TRUE(table.Insert({Value::String("dup"), Value::Int(1)}).ok());
  ASSERT_TRUE(table.Insert({Value::String("dup"), Value::Int(2)}).ok());
  ASSERT_TRUE(table.Insert({Value::Null(), Value::Int(3)}).ok());

  const StringDictionary* dict = table.dictionary(0);
  ASSERT_NE(dict, nullptr);
  EXPECT_EQ(dict->size(), 1u);               // "dup" stored once
  EXPECT_EQ(table.dictionary(1), nullptr);   // INT64 column: no dictionary

  // Both string rows share the interned storage; NULL stays NULL.
  ASSERT_TRUE(table.row(0)[0].is_interned());
  ASSERT_TRUE(table.row(1)[0].is_interned());
  EXPECT_EQ(table.row(0)[0].interned_ptr(), table.row(1)[0].interned_ptr());
  EXPECT_TRUE(table.row(2)[0].is_null());
}

TEST(TableDictionaryTest, CodesStableAcrossAnalyzeStatistics) {
  Table table(TableSchema("t", {{"s", DataType::kString}}));
  ASSERT_TRUE(table.Insert({Value::String("a")}).ok());
  ASSERT_TRUE(table.Insert({Value::String("b")}).ok());

  const StringDictionary* dict = table.dictionary(0);
  ASSERT_NE(dict, nullptr);
  uint32_t code_a = dict->Find("a");
  uint32_t code_b = dict->Find("b");
  ASSERT_NE(code_a, StringDictionary::kInvalidCode);
  ASSERT_NE(code_b, StringDictionary::kInvalidCode);

  // AnalyzeStatistics may re-intern every row; existing codes (and the
  // interned pointers built from them) must not move.
  const std::string* ptr_a = dict->StringAt(code_a);
  table.AnalyzeStatistics();
  table.AnalyzeStatistics();  // idempotent
  EXPECT_EQ(dict->Find("a"), code_a);
  EXPECT_EQ(dict->Find("b"), code_b);
  EXPECT_EQ(dict->StringAt(code_a), ptr_a);
  EXPECT_EQ(table.row(0)[0].interned_ptr(), ptr_a);
}

// Regression (TSan): Intern used to mutate the lookup table without any
// synchronization, so two loader threads interning overlapping key sets
// raced. Interning is now mutex-guarded: every thread must agree on one
// code per string, with no duplicates.
TEST(DictionaryTest, ConcurrentInterningAssignsStableCodes) {
  StringDictionary dict;
  constexpr int kThreads = 4;
  constexpr int kStrings = 200;
  std::vector<std::vector<uint32_t>> codes(kThreads,
                                           std::vector<uint32_t>(kStrings));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kStrings; ++i) {
        // Threads collide on the shared strings and race on fresh ones.
        const std::string s = "key-" + std::to_string(i);
        codes[t][i] = dict.Intern(s);
        Value v = dict.InternValue(s);
        if (*v.interned_ptr() != s) codes[t][i] = StringDictionary::kInvalidCode;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(dict.size(), static_cast<size_t>(kStrings));
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(codes[t], codes[0]) << "thread " << t << " saw different codes";
  }
  for (int i = 0; i < kStrings; ++i) {
    EXPECT_EQ(*dict.StringAt(codes[0][i]), "key-" + std::to_string(i));
    EXPECT_EQ(dict.Find("key-" + std::to_string(i)), codes[0][i]);
  }
}

// Concurrent read-only literal resolution (the query path): Find from many
// threads on a frozen dictionary, misses never intern.
TEST(DictionaryTest, ConcurrentFindIsReadOnly) {
  StringDictionary dict;
  for (int i = 0; i < 64; ++i) dict.Intern("v" + std::to_string(i));
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        const int k = i % 96;  // one third of the probes miss
        const uint32_t code = dict.Find("v" + std::to_string(k));
        if (k < 64) {
          if (code != static_cast<uint32_t>(k)) wrong.fetch_add(1);
        } else if (code != StringDictionary::kInvalidCode) {
          wrong.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(dict.size(), 64u) << "Find must never intern";
}

}  // namespace
}  // namespace conquer
