// Tests for the chunked columnar storage layer: chunk layout, per-chunk
// zone maps, in-place updates through Table::SetValue (which must keep
// dictionaries, indexes and zone maps coherent), and Rechunk.

#include "storage/chunk.h"

#include <gtest/gtest.h>

#include "storage/table.h"

namespace conquer {
namespace {

TableSchema MakeSchema() {
  return TableSchema("t", {{"a", DataType::kInt64},
                           {"b", DataType::kString},
                           {"c", DataType::kDouble}});
}

Table MakeSmallChunkTable(size_t chunk_capacity, int rows) {
  Table table(MakeSchema(), chunk_capacity);
  for (int i = 0; i < rows; ++i) {
    EXPECT_TRUE(table
                    .Insert({Value::Int(i), Value::String("s" + std::to_string(i % 3)),
                             Value::Double(i * 0.5)})
                    .ok());
  }
  return table;
}

TEST(ChunkTest, RowsSplitAcrossChunksAtCapacity) {
  Table table = MakeSmallChunkTable(/*chunk_capacity=*/4, /*rows=*/10);
  EXPECT_EQ(table.num_rows(), 10u);
  ASSERT_EQ(table.num_chunks(), 3u);
  EXPECT_EQ(table.chunk(0).num_rows(), 4u);
  EXPECT_EQ(table.chunk(1).num_rows(), 4u);
  EXPECT_EQ(table.chunk(2).num_rows(), 2u);
  // Global positions address across chunk boundaries.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(table.ValueAt(i, 0).int_value(), i);
    EXPECT_DOUBLE_EQ(table.ValueAt(i, 2).double_value(), i * 0.5);
  }
}

TEST(ChunkTest, ZoneMapsTrackMinMaxAndNulls) {
  Table table(MakeSchema(), /*chunk_capacity=*/4);
  ASSERT_TRUE(table.Insert({Value::Int(7), Value::Null(), Value::Double(1)}).ok());
  ASSERT_TRUE(table.Insert({Value::Int(-2), Value::String("x"), Value::Null()}).ok());
  ASSERT_TRUE(table.Insert({Value::Int(5), Value::String("a"), Value::Double(3)}).ok());
  const Chunk& ch = table.chunk(0);
  EXPECT_EQ(ch.zone(0).min.int_value(), -2);
  EXPECT_EQ(ch.zone(0).max.int_value(), 7);
  EXPECT_EQ(ch.zone(0).null_count, 0u);
  EXPECT_EQ(ch.zone(1).null_count, 1u);
  EXPECT_EQ(ch.zone(1).min.string_value(), "a");
  EXPECT_EQ(ch.zone(1).max.string_value(), "x");
  EXPECT_EQ(ch.zone(2).null_count, 1u);
}

TEST(ChunkTest, AllNullColumnHasNoZoneValues) {
  Table table(MakeSchema(), /*chunk_capacity=*/4);
  ASSERT_TRUE(table.Insert({Value::Int(1), Value::Null(), Value::Null()}).ok());
  ASSERT_TRUE(table.Insert({Value::Int(2), Value::Null(), Value::Null()}).ok());
  const ZoneMap& z = table.chunk(0).zone(1);
  EXPECT_FALSE(z.has_values());
  EXPECT_EQ(z.null_count, 2u);
}

TEST(ChunkTest, StringsComeBackInterned) {
  Table table = MakeSmallChunkTable(/*chunk_capacity=*/4, /*rows=*/6);
  Value a = table.ValueAt(0, 1);
  Value b = table.ValueAt(3, 1);  // same "s0", different chunk position
  ASSERT_TRUE(a.is_interned());
  ASSERT_TRUE(b.is_interned());
  EXPECT_EQ(a.interned_ptr(), b.interned_ptr());
}

// The mutable_row() footgun this layer replaced: an in-place write must
// re-intern strings, keep zone maps conservative, and invalidate indexes —
// a stale index or zone map would silently drop rows from later queries.
TEST(ChunkTest, SetValueReinternsStrings) {
  Table table = MakeSmallChunkTable(/*chunk_capacity=*/4, /*rows=*/2);
  table.SetValue(0, 1, Value::String("fresh"));
  Value v = table.ValueAt(0, 1);
  ASSERT_TRUE(v.is_interned());
  EXPECT_EQ(v.string_value(), "fresh");
  // The dictionary knows the new string, so interned-compare still works.
  const StringDictionary* dict = table.dictionary(1);
  ASSERT_NE(dict, nullptr);
  EXPECT_NE(dict->Find("fresh"), StringDictionary::kInvalidCode);
}

TEST(ChunkTest, SetValueWidensZoneMapAndCountsNulls) {
  Table table = MakeSmallChunkTable(/*chunk_capacity=*/4, /*rows=*/3);
  // Values 0,1,2 -> zone [0,2]. Write 50 and a NULL.
  table.SetValue(1, 0, Value::Int(50));
  table.SetValue(2, 0, Value::Null());
  const ZoneMap& z = table.chunk(0).zone(0);
  EXPECT_LE(z.min.int_value(), 0);
  EXPECT_GE(z.max.int_value(), 50);
  EXPECT_EQ(z.null_count, 1u);
  // Overwriting the NULL with a value restores the exact count.
  table.SetValue(2, 0, Value::Int(1));
  EXPECT_EQ(table.chunk(0).zone(0).null_count, 0u);
}

TEST(ChunkTest, SetValueInvalidatesOnlyTheTouchedChunkSlice) {
  Table table = MakeSmallChunkTable(/*chunk_capacity=*/4, /*rows=*/8);
  ASSERT_TRUE(table.CreateIndex("a").ok());
  const ChunkIndex* idx = table.GetIndex(0);
  ASSERT_NE(idx, nullptr);
  ASSERT_TRUE(idx->ChunkValid(0));
  ASSERT_TRUE(idx->ChunkValid(1));
  table.SetValue(2, 0, Value::Int(99));
  // The index survives the in-place write: only the written chunk's slice
  // is invalidated (lazily rebuilt at the next probe); the other chunk —
  // and the index as a whole — stay live.
  EXPECT_NE(table.GetIndex(0), nullptr);
  EXPECT_FALSE(idx->ChunkValid(0));
  EXPECT_TRUE(idx->ChunkValid(1));
  // A probe through the table rebuilds the stale slice and sees the write.
  bool unsupported = false;
  const ChunkIndex::ProbeSpec probe =
      idx->ResolveProbe(Value::Int(99), table.dictionary(0),
                        /*join_semantics=*/false, &unsupported);
  ASSERT_FALSE(unsupported);
  std::vector<uint32_t> hits;
  table.IndexProbeChunk(0, probe, /*scan_semantics=*/true, 0, &hits, nullptr);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 2u);
  EXPECT_TRUE(idx->ChunkValid(0));
}

TEST(ChunkTest, SetValueKeepsIndexOnOtherColumns) {
  Table table = MakeSmallChunkTable(/*chunk_capacity=*/4, /*rows=*/4);
  ASSERT_TRUE(table.CreateIndex("a").ok());
  table.SetValue(2, 2, Value::Double(9.0));
  EXPECT_NE(table.GetIndex(0), nullptr);
}

TEST(ChunkTest, AnalyzeStatisticsRetightensZonesAfterUpdates) {
  Table table = MakeSmallChunkTable(/*chunk_capacity=*/8, /*rows=*/4);
  table.SetValue(0, 0, Value::Int(100));  // widens zone to [0,100]
  table.SetValue(0, 0, Value::Int(2));    // zone still [0,100] (conservative)
  table.AnalyzeStatistics();
  const ZoneMap& z = table.chunk(0).zone(0);
  EXPECT_EQ(z.min.int_value(), 1);  // rows now 2,1,2,3
  EXPECT_EQ(z.max.int_value(), 3);
}

TEST(ChunkTest, RechunkPreservesRowsAndPositions) {
  Table table = MakeSmallChunkTable(/*chunk_capacity=*/64, /*rows=*/10);
  std::vector<Row> before = table.rows();
  table.Rechunk(3);
  EXPECT_EQ(table.num_chunks(), 4u);
  EXPECT_EQ(table.chunk_capacity(), 3u);
  std::vector<Row> after = table.rows();
  ASSERT_EQ(before.size(), after.size());
  for (size_t r = 0; r < before.size(); ++r) {
    ASSERT_EQ(before[r].size(), after[r].size());
    for (size_t c = 0; c < before[r].size(); ++c) {
      EXPECT_EQ(before[r][c].TotalCompare(after[r][c]), 0)
          << "row " << r << " col " << c;
    }
  }
  // Zone maps were rebuilt per new chunk.
  EXPECT_EQ(table.chunk(3).zone(0).min.int_value(), 9);
}

TEST(ChunkTest, SingleRowChunkZones) {
  Table table = MakeSmallChunkTable(/*chunk_capacity=*/1, /*rows=*/3);
  ASSERT_EQ(table.num_chunks(), 3u);
  for (int i = 0; i < 3; ++i) {
    const ZoneMap& z = table.chunk(i).zone(0);
    EXPECT_EQ(z.min.int_value(), i);
    EXPECT_EQ(z.max.int_value(), i);
  }
}

TEST(ChunkTest, ClearResetsChunksAndDictionaries) {
  Table table = MakeSmallChunkTable(/*chunk_capacity=*/4, /*rows=*/6);
  table.Clear();
  EXPECT_EQ(table.num_rows(), 0u);
  EXPECT_EQ(table.num_chunks(), 0u);
  ASSERT_TRUE(
      table.Insert({Value::Int(1), Value::String("zz"), Value::Double(0)})
          .ok());
  EXPECT_EQ(table.ValueAt(0, 1).string_value(), "zz");
}

}  // namespace
}  // namespace conquer
