// Stale-metadata regressions around the online write path.
//
// The headline regression: a chunk's all-distinct zone flag let equality
// scans stop after the first hit, so appending a duplicate key into an
// analyzed chunk silently dropped the second match. AppendRow now clears
// the flag (Analyze re-derives it). The remaining tests prove the broader
// contract — writes widen or invalidate chunk metadata conservatively, so
// zone pruning never produces a false skip, and Analyze re-tightens the
// maps afterwards without changing any result.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "engine/database.h"
#include "exec/query_stats.h"
#include "storage/table.h"
#include "types/value.h"

namespace conquer {
namespace {

uint64_t SumMetric(const PlanNodeStats& node,
                   uint64_t OperatorMetrics::*field) {
  uint64_t total = node.metrics.*field;
  for (const auto& child : node.children) total += SumMetric(child, field);
  return total;
}

void ExpectSameResults(const ResultSet& a, const ResultSet& b) {
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (size_t r = 0; r < a.rows.size(); ++r) {
    ASSERT_EQ(a.rows[r].size(), b.rows[r].size());
    for (size_t c = 0; c < a.rows[r].size(); ++c) {
      EXPECT_EQ(a.rows[r][c].TotalCompare(b.rows[r][c]), 0)
          << "row " << r << " col " << c;
    }
  }
}

class WriteInvalidationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        db_.CreateTable(TableSchema("m", {{"k", DataType::kInt64},
                                          {"v", DataType::kDouble}}))
            .ok());
    std::vector<Row> rows;
    for (int i = 0; i < 100; ++i) {
      rows.push_back({Value::Int(i), Value::Double(i * 0.25)});
    }
    ASSERT_TRUE(db_.InsertMany("m", std::move(rows)).ok());
    auto t = db_.GetTable("m");
    ASSERT_TRUE(t.ok());
    table_ = *t;
    // Keys arrive in order, so capacity 10 gives chunks with disjoint
    // zones [0,9], [10,19], ..., [90,99].
    table_->Rechunk(10);
    ASSERT_TRUE(db_.Analyze("m").ok());
  }

  ResultSet Run(const std::string& sql, QueryStats* stats = nullptr) {
    auto rs = db_.Query(sql, stats);
    EXPECT_TRUE(rs.ok()) << rs.status().ToString() << " for: " << sql;
    return rs.ok() ? std::move(rs).value() : ResultSet{};
  }

  /// Runs `sql` twice, with zone pruning on and off, asserts both give the
  /// same rows (no false skips), and returns the pruned run's result.
  ResultSet RunBothModes(const std::string& sql) {
    ResultSet pruned = Run(sql);
    db_.mutable_exec_context()->enable_zone_pruning = false;
    ResultSet full = Run(sql);
    db_.mutable_exec_context()->enable_zone_pruning = true;
    ExpectSameResults(pruned, full);
    return pruned;
  }

  int64_t Write(const std::string& sql) {
    auto rs = db_.ExecuteWrite(sql);
    EXPECT_TRUE(rs.ok()) << rs.status().ToString() << " for: " << sql;
    return rs.ok() ? rs->rows[0][0].int_value() : -1;
  }

  Database db_;
  Table* table_ = nullptr;
};

// The footgun itself: Analyze marks the populated chunk all-distinct; an
// appended duplicate must clear that flag or the equality scan's
// first-hit early exit drops the new row.
TEST_F(WriteInvalidationTest, DuplicateAppendIntoAnalyzedChunkFindsBothRows) {
  Database db;
  ASSERT_TRUE(
      db.CreateTable(TableSchema("u", {{"a", DataType::kInt64},
                                       {"p", DataType::kDouble}}))
          .ok());
  std::vector<Row> rows;
  for (int i = 0; i < 20; ++i) {
    rows.push_back({Value::Int(i), Value::Double(0.5)});
  }
  ASSERT_TRUE(db.InsertMany("u", std::move(rows)).ok());
  ASSERT_TRUE(db.Analyze("u").ok());  // sets the all-distinct flag

  auto wr = db.ExecuteWrite("insert into u values (5, 0.5)");
  ASSERT_TRUE(wr.ok()) << wr.status().ToString();

  auto count = db.Query("select count(*) from u where a = 5");
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count->rows[0][0].int_value(), 2);
  // The contrast run without pruning (and without any zone shortcuts on
  // the scan) must agree.
  db.mutable_exec_context()->enable_zone_pruning = false;
  auto full = db.Query("select count(*) from u where a = 5");
  db.mutable_exec_context()->enable_zone_pruning = true;
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->rows[0][0].int_value(), 2);
}

TEST_F(WriteInvalidationTest, PruningStaysSoundAfterInsertAndUpdate) {
  EXPECT_EQ(Write("insert into m values (5, 1.5)"), 1);
  EXPECT_EQ(Write("update m set v = 9.5 where k = 97"), 1);

  // Point query hitting the freshly appended duplicate.
  ResultSet dup = RunBothModes("select count(*) from m where k = 5");
  EXPECT_EQ(dup.rows[0][0].int_value(), 2);
  // The updated row is visible exactly once with its new value; the dead
  // old version still sits in a chunk whose zone covers k = 97.
  ResultSet upd = RunBothModes("select v from m where k = 97");
  ASSERT_EQ(upd.rows.size(), 1u);
  EXPECT_EQ(upd.rows[0][0].AsDouble(), 9.5);
  // Full-table agreement between pruned and unpruned scans.
  RunBothModes("select k, v from m order by k, v");
}

TEST_F(WriteInvalidationTest, AnalyzeRetightensZonesAfterWrites) {
  EXPECT_EQ(Write("insert into m values (5, 1.5)"), 1);
  EXPECT_EQ(Write("delete from m where k = 98"), 1);
  ASSERT_TRUE(db_.Analyze("m").ok());

  QueryStats stats;
  ResultSet rs = Run("select v from m where k >= 95", &stats);
  EXPECT_EQ(rs.rows.size(), 4u);  // 95, 96, 97, 99
  // All low chunks (and the appended chunk holding only k = 5) are
  // provably dead again after Analyze.
  EXPECT_GE(SumMetric(stats.plan, &OperatorMetrics::chunks_skipped), 9u);
  // And re-tightening changed no answers.
  RunBothModes("select k, v from m order by k, v");
}

// Rechunking rebuilds the columnar storage; it must carry the MVCC stamps
// along or deleted rows resurrect.
TEST_F(WriteInvalidationTest, DeletedRowsStayDeadAfterRechunk) {
  EXPECT_EQ(Write("delete from m where k = 7"), 1);
  EXPECT_EQ(Run("select count(*) from m").rows[0][0].int_value(), 99);

  table_->Rechunk(16);
  EXPECT_EQ(Run("select count(*) from m").rows[0][0].int_value(), 99);
  ResultSet gone = RunBothModes("select v from m where k = 7");
  EXPECT_EQ(gone.rows.size(), 0u);
}

TEST_F(WriteInvalidationTest, IndexedLookupsTrackWritesAndVersions) {
  ASSERT_TRUE(table_->CreateIndex("k").ok());

  EXPECT_EQ(Write("insert into m values (5, 1.5)"), 1);
  EXPECT_EQ(RunBothModes("select count(*) from m where k = 5")
                .rows[0][0]
                .int_value(),
            2);

  // Deleting the key removes both versions from every access path.
  EXPECT_EQ(Write("delete from m where k = 5"), 2);
  EXPECT_EQ(RunBothModes("select count(*) from m where k = 5")
                .rows[0][0]
                .int_value(),
            0);
  EXPECT_EQ(Run("select count(*) from m").rows[0][0].int_value(), 99);
}

}  // namespace
}  // namespace conquer
