// Concurrency semantics of TaskPool / TaskGroup: barrier waits,
// first-error-wins Status propagation, nested and empty groups, inline
// fallback without a pool, and clean shutdown with queued work. These are
// the invariants every morsel-driven operator phase leans on.

#include "common/task_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace conquer {
namespace {

TEST(TaskGroupTest, EmptyGroupWaitReturnsOk) {
  TaskPool pool(2);
  TaskGroup group(&pool);
  EXPECT_TRUE(group.Wait().ok());
  // Wait is idempotent.
  EXPECT_TRUE(group.Wait().ok());
}

TEST(TaskGroupTest, RunsEveryTaskExactlyOnce) {
  TaskPool pool(4);
  std::atomic<int> counter{0};
  TaskGroup group(&pool);
  constexpr int kTasks = 200;
  for (int i = 0; i < kTasks; ++i) {
    group.Submit([&counter]() -> Status {
      counter.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    });
  }
  ASSERT_TRUE(group.Wait().ok());
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(TaskGroupTest, NullPoolRunsInline) {
  std::atomic<int> counter{0};
  std::thread::id caller = std::this_thread::get_id();
  TaskGroup group(nullptr);
  group.Submit([&]() -> Status {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    counter.fetch_add(1);
    return Status::OK();
  });
  // Inline tasks complete before Submit returns.
  EXPECT_EQ(counter.load(), 1);
  EXPECT_TRUE(group.Wait().ok());
}

TEST(TaskGroupTest, ErrorIsPropagatedAndGroupCancelled) {
  TaskPool pool(2);
  TaskGroup group(&pool);
  group.Submit([]() -> Status {
    return Status::Internal("task exploded");
  });
  Status s = group.Wait();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message(), "task exploded");
  EXPECT_TRUE(group.cancelled());
}

TEST(TaskGroupTest, FirstErrorWinsOverLaterErrors) {
  TaskPool pool(2);
  TaskGroup group(&pool);
  // A guaranteed-first failure: it runs and fails before the stragglers
  // (which block on the latch) can finish.
  std::atomic<bool> release{false};
  group.Submit([]() -> Status { return Status::ResourceExhausted("first"); });
  for (int i = 0; i < 8; ++i) {
    group.Submit([&release]() -> Status {
      while (!release.load()) std::this_thread::yield();
      return Status::Internal("late failure");
    });
  }
  // Give the first task time to record its error, then release the rest.
  while (!group.cancelled()) std::this_thread::yield();
  release.store(true);
  Status s = group.Wait();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(s.message(), "first");
}

TEST(TaskGroupTest, TasksSubmittedAfterErrorAreSkipped) {
  TaskPool pool(2);
  TaskGroup group(&pool);
  group.Submit([]() -> Status { return Status::Internal("boom"); });
  while (!group.cancelled()) std::this_thread::yield();
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    group.Submit([&ran]() -> Status {
      ran.fetch_add(1);
      return Status::OK();
    });
  }
  EXPECT_FALSE(group.Wait().ok());
  // Post-cancellation submissions never execute their callable.
  EXPECT_EQ(ran.load(), 0);
}

TEST(TaskGroupTest, NestedGroupsDoNotDeadlockOnSmallPool) {
  // A pool with one worker: the outer task occupies it and then waits on an
  // inner group; Wait() must help drain the queue instead of deadlocking.
  TaskPool pool(1);
  std::atomic<int> inner_runs{0};
  TaskGroup outer(&pool);
  for (int o = 0; o < 4; ++o) {
    outer.Submit([&pool, &inner_runs]() -> Status {
      TaskGroup inner(&pool);
      for (int i = 0; i < 8; ++i) {
        inner.Submit([&inner_runs]() -> Status {
          inner_runs.fetch_add(1, std::memory_order_relaxed);
          return Status::OK();
        });
      }
      return inner.Wait();
    });
  }
  ASSERT_TRUE(outer.Wait().ok());
  EXPECT_EQ(inner_runs.load(), 32);
}

TEST(TaskGroupTest, NestedErrorPropagatesThroughOuterGroup) {
  TaskPool pool(2);
  TaskGroup outer(&pool);
  outer.Submit([&pool]() -> Status {
    TaskGroup inner(&pool);
    inner.Submit([]() -> Status { return Status::TypeError("inner bad"); });
    return inner.Wait();
  });
  Status s = outer.Wait();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
}

TEST(TaskGroupTest, GroupIsReusableAfterWait) {
  TaskPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> counter{0};
  group.Submit([&]() -> Status {
    counter.fetch_add(1);
    return Status::OK();
  });
  ASSERT_TRUE(group.Wait().ok());
  group.Submit([&]() -> Status {
    counter.fetch_add(1);
    return Status::OK();
  });
  ASSERT_TRUE(group.Wait().ok());
  EXPECT_EQ(counter.load(), 2);
}

TEST(TaskPoolTest, DestructorDrainsQueuedWork) {
  std::atomic<int> counter{0};
  constexpr int kTasks = 64;
  {
    TaskPool pool(2);
    TaskGroup group(&pool);
    for (int i = 0; i < kTasks; ++i) {
      group.Submit([&counter]() -> Status {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        counter.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      });
    }
    // Neither group.Wait() nor any drain: the group destructor waits and
    // the pool destructor must execute (not drop) whatever is still queued.
  }
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(TaskPoolTest, ClampsToAtLeastOneThread) {
  TaskPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  TaskGroup group(&pool);
  std::atomic<int> counter{0};
  group.Submit([&]() -> Status {
    counter.fetch_add(1);
    return Status::OK();
  });
  ASSERT_TRUE(group.Wait().ok());
  EXPECT_EQ(counter.load(), 1);
}

TEST(TaskPoolTest, ManyGroupsShareOnePool) {
  TaskPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::unique_ptr<TaskGroup>> groups;
  for (int g = 0; g < 8; ++g) {
    groups.push_back(std::make_unique<TaskGroup>(&pool));
    for (int i = 0; i < 25; ++i) {
      groups.back()->Submit([&counter]() -> Status {
        counter.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      });
    }
  }
  for (auto& g : groups) ASSERT_TRUE(g->Wait().ok());
  EXPECT_EQ(counter.load(), 200);
}

}  // namespace
}  // namespace conquer
