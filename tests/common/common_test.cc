// Unit tests for the common layer: Status/Result, string utilities, RNG.

#include <gtest/gtest.h>

#include <set>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"

namespace conquer {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("thing is missing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "thing is missing");
  EXPECT_EQ(s.ToString(), "Not found: thing is missing");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    CONQUER_RETURN_NOT_OK(Status::Internal("boom"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kInternal);
}

// GCC 12 raises a false-positive -Wmaybe-uninitialized inside the variant
// destructor when the whole Result lifetime is visible to the inliner.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto maybe = [](bool fail) -> Result<int> {
    if (fail) return Status::OutOfRange("nope");
    return 5;
  };
  auto user = [&](bool fail) -> Result<int> {
    CONQUER_ASSIGN_OR_RETURN(int x, maybe(fail));
    return x * 2;
  };
  EXPECT_EQ(*user(false), 10);
  EXPECT_EQ(user(true).status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(3));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 3);
}

TEST(StrUtilTest, CaseConversions) {
  EXPECT_EQ(ToLower("MiXeD_123"), "mixed_123");
  EXPECT_EQ(ToUpper("MiXeD_123"), "MIXED_123");
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
}

TEST(StrUtilTest, SplitAndJoin) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Split("abc", ',').size(), 1u);
}

TEST(StrUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\n x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StrUtilTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%05.2f", 3.14159), "03.14");
}

TEST(LikeMatchTest, Wildcards) {
  EXPECT_TRUE(LikeMatch("BUILDING", "BUILD%"));
  EXPECT_TRUE(LikeMatch("forest green", "forest%"));
  EXPECT_TRUE(LikeMatch("STANDARD BRASS", "%BRASS"));
  EXPECT_TRUE(LikeMatch("a green part", "%green%"));
  EXPECT_TRUE(LikeMatch("Mary", "M_ry"));
  EXPECT_TRUE(LikeMatch("anything", "%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("", "_"));
  EXPECT_FALSE(LikeMatch("Mary", "M_r"));
  EXPECT_FALSE(LikeMatch("abc", "abd"));
  // Backtracking case: '%' must retry shorter matches.
  EXPECT_TRUE(LikeMatch("aXbXc", "a%Xc"));
  EXPECT_TRUE(LikeMatch("mississippi", "%iss%ppi"));
  EXPECT_FALSE(LikeMatch("mississippi", "%issx%"));
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformWithinBounds) {
  Rng rng(99);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // every value hit
}

TEST(RngTest, UniformHandlesSinglePoint) {
  Rng rng(5);
  EXPECT_EQ(rng.Uniform(4, 4), 4);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(77);
  double sum = 0;
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 1000.0, 0.5, 0.05);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kNotRewritable, StatusCode::kResourceExhausted,
        StatusCode::kTypeError, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

}  // namespace
}  // namespace conquer
