#include "common/flat_hash.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "types/value.h"

namespace conquer {
namespace {

TEST(FlatHashMapTest, InsertFindGrow) {
  FlatHashMap<int64_t, int64_t> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(7), nullptr);

  constexpr int64_t kN = 10000;  // forces many doublings from the default
  for (int64_t i = 0; i < kN; ++i) {
    auto [slot, inserted] = map.TryEmplace(i * 31);
    ASSERT_TRUE(inserted);
    *slot = i;
  }
  EXPECT_EQ(map.size(), static_cast<size_t>(kN));
  // Power-of-two capacity with load factor <= 3/4.
  EXPECT_EQ(map.capacity() & (map.capacity() - 1), 0u);
  EXPECT_GE(map.capacity() * 3, map.size() * 4);

  for (int64_t i = 0; i < kN; ++i) {
    int64_t* v = map.Find(i * 31);
    ASSERT_NE(v, nullptr) << i;
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(map.Find(1), nullptr);  // 1 is not a multiple of 31

  // Duplicate insert finds the existing entry.
  auto [slot, inserted] = map.TryEmplace(0);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(*slot, 0);
  EXPECT_EQ(map.size(), static_cast<size_t>(kN));
}

TEST(FlatHashMapTest, ReserveAvoidsRehash) {
  FlatHashMap<int64_t, int64_t> map;
  map.Reserve(1000);
  size_t cap = map.capacity();
  EXPECT_GE(cap * 3, 1000u * 4);  // roomy enough: 1000 entries fit
  for (int64_t i = 0; i < 1000; ++i) *map.TryEmplace(i).first = i;
  EXPECT_EQ(map.capacity(), cap) << "Reserve(1000) must absorb 1000 inserts";
}

/// Adversarial hasher: every key lands on the same raw hash, so every
/// insert extends one linear-probe collision chain.
struct CollidingHash {
  size_t operator()(int64_t) const { return 42; }
};

TEST(FlatHashMapTest, CollisionChainsResolveByKeyEquality) {
  FlatHashMap<int64_t, std::string, CollidingHash> map;
  for (int64_t i = 0; i < 200; ++i) {
    *map.TryEmplace(i).first = "v" + std::to_string(i);
  }
  EXPECT_EQ(map.size(), 200u);
  for (int64_t i = 0; i < 200; ++i) {
    std::string* v = map.Find(i);
    ASSERT_NE(v, nullptr) << i;
    EXPECT_EQ(*v, "v" + std::to_string(i));
  }
  EXPECT_EQ(map.Find(1000), nullptr);  // full-chain miss must terminate
}

TEST(FlatHashMapTest, RehashIsTombstoneFreeAndKeepsInsertionOrder) {
  FlatHashMap<int64_t, int64_t> map;
  for (int64_t i = 0; i < 5000; ++i) *map.TryEmplace(i).first = i * 2;
  // The entry array is dense (size == live entries: nothing dead survives a
  // rehash) and preserves insertion order across all the growth rehashes.
  ASSERT_EQ(map.entries().size(), map.size());
  for (size_t i = 0; i < map.entries().size(); ++i) {
    EXPECT_EQ(map.entries()[i].key, static_cast<int64_t>(i));
    EXPECT_EQ(map.entries()[i].value, static_cast<int64_t>(i) * 2);
  }
}

TEST(FlatHashMapTest, HashedEntryPointsMatchPlainOnes) {
  FlatHashMap<std::string, int64_t> map;
  std::hash<std::string> h;
  *map.TryEmplaceHashed(h("abc"), "abc").first = 1;
  EXPECT_EQ(*map.Find("abc"), 1);
  EXPECT_EQ(*map.FindHashed(h("abc"), "abc"), 1);
  EXPECT_EQ(map.FindHashed(h("zzz"), "zzz"), nullptr);
}

TEST(FlatHashPartitionTest, HighBitRoutingCoversAllPartitions) {
  constexpr size_t kParts = 32;
  std::vector<int> hits(kParts, 0);
  for (uint64_t i = 0; i < 10000; ++i) {
    size_t p = HashPartition(HashMix(i), kParts);
    ASSERT_LT(p, kParts);
    ++hits[p];
  }
  for (size_t p = 0; p < kParts; ++p) {
    EXPECT_GT(hits[p], 0) << "partition " << p << " never hit";
  }
}

// Regression (satellite): TotalCompare-equal numeric keys must share a
// group. An INT64 1 reaching a DOUBLE column's hash table (e.g. via an
// expression that skipped Table::Insert's widening) hashes like 1.0.
TEST(FlatHashMapTest, ValueKeysCollideAcrossInt64AndDouble) {
  EXPECT_EQ(Value::Int(1).TotalCompare(Value::Double(1.0)), 0);
  EXPECT_EQ(Value::Int(1).Hash(), Value::Double(1.0).Hash());
  EXPECT_EQ(Value::Double(0.0).Hash(), Value::Double(-0.0).Hash());

  FlatHashMap<Value, int64_t, ValueHash> map;
  *map.TryEmplace(Value::Int(1)).first = 10;
  auto [slot, inserted] = map.TryEmplace(Value::Double(1.0));
  EXPECT_FALSE(inserted) << "INT64 1 and DOUBLE 1.0 must land in one group";
  EXPECT_EQ(*slot, 10);
  ASSERT_NE(map.Find(Value::Double(1.0)), nullptr);
  ASSERT_NE(map.Find(Value::Int(1)), nullptr);
  EXPECT_EQ(map.Find(Value::Int(1)), map.Find(Value::Double(1.0)));
}

}  // namespace
}  // namespace conquer
