// Unit tests for the FIFO shared/exclusive admission gate.

#include "common/admission.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace conquer {
namespace {

using namespace std::chrono_literals;

TEST(AdmissionGateTest, SharedCapIsEnforced) {
  AdmissionGate gate(2);
  std::atomic<int> active{0};
  std::atomic<int> peak{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        SharedAdmission admission(&gate);
        int now = active.fetch_add(1, std::memory_order_acq_rel) + 1;
        int seen = peak.load(std::memory_order_relaxed);
        while (now > seen &&
               !peak.compare_exchange_weak(seen, now,
                                           std::memory_order_relaxed)) {
        }
        std::this_thread::yield();
        active.fetch_sub(1, std::memory_order_acq_rel);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(peak.load(), 2);
  const AdmissionGate::Stats stats = gate.stats();
  EXPECT_EQ(stats.admitted, 300u);
  EXPECT_EQ(stats.active_now, 0u);
  EXPECT_LE(stats.peak_active, 2u);
}

TEST(AdmissionGateTest, ExclusiveRunsAlone) {
  AdmissionGate gate(4);
  std::atomic<int> shared_active{0};
  std::atomic<bool> overlap{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 40; ++i) {
        SharedAdmission admission(&gate);
        shared_active.fetch_add(1);
        std::this_thread::yield();
        shared_active.fetch_sub(1);
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 10; ++i) {
      ExclusiveAdmission admission(&gate);
      if (shared_active.load() != 0) overlap.store(true);
      std::this_thread::sleep_for(1ms);
      if (shared_active.load() != 0) overlap.store(true);
    }
  });
  for (auto& t : threads) t.join();
  EXPECT_FALSE(overlap.load());
}

// FIFO fairness: a shared arrival AFTER a blocked exclusive must not be
// admitted before it (no overtaking, so writers cannot starve).
TEST(AdmissionGateTest, LaterSharedDoesNotOvertakeWaitingExclusive) {
  AdmissionGate gate(4);
  std::mutex order_mu;
  std::vector<std::string> order;
  auto record = [&](const char* what) {
    std::lock_guard<std::mutex> lock(order_mu);
    order.push_back(what);
  };

  gate.AcquireShared();  // holder keeps the exclusive waiting

  std::thread excl([&] {
    gate.AcquireExclusive();
    record("exclusive");
    gate.ReleaseExclusive();
  });
  // Wait until the exclusive acquirer is queued (its ticket taken).
  while (gate.stats().waiting_now < 1) std::this_thread::sleep_for(1ms);

  std::thread late([&] {
    gate.AcquireShared();
    record("late-shared");
    gate.ReleaseShared();
  });
  while (gate.stats().waiting_now < 2) std::this_thread::sleep_for(1ms);

  gate.ReleaseShared();  // unblock: exclusive must go first
  excl.join();
  late.join();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "exclusive");
  EXPECT_EQ(order[1], "late-shared");
}

TEST(AdmissionGateTest, WaitedCounterTracksContention) {
  AdmissionGate gate(1);
  gate.AcquireShared();
  EXPECT_EQ(gate.stats().waited, 0u);
  std::thread t([&] {
    gate.AcquireShared();
    gate.ReleaseShared();
  });
  while (gate.stats().waiting_now < 1) std::this_thread::sleep_for(1ms);
  gate.ReleaseShared();
  t.join();
  EXPECT_GE(gate.stats().waited, 1u);
  EXPECT_EQ(gate.stats().active_now, 0u);
}

}  // namespace
}  // namespace conquer
