// MVCC snapshot-visibility tests: a reader admitted before a write never
// sees its rows, a reader admitted after sees exactly them, and an UPDATE
// never exposes both versions of a row in one scan. The tests pin scan
// snapshots with ExecContext::snapshot_override, the same mechanism a
// concurrent reader uses implicitly when a write commits mid-session.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "engine/database.h"
#include "exec/exec_context.h"
#include "storage/table.h"
#include "types/value.h"

namespace conquer {
namespace {

class VisibilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableSchema items("items", {{"k", DataType::kInt64},
                                {"name", DataType::kString}});
    ASSERT_TRUE(db_.CreateTable(items).ok());
    std::vector<Row> rows;
    for (int i = 1; i <= 4; ++i) {
      rows.push_back(
          {Value::Int(i), Value::String("n" + std::to_string(i))});
    }
    ASSERT_TRUE(db_.InsertMany("items", std::move(rows)).ok());
    auto t = db_.GetTable("items");
    ASSERT_TRUE(t.ok());
    table_ = *t;
  }

  /// Runs `sql` with the scan snapshot pinned to `snapshot`, restoring the
  /// follow-latest default afterwards.
  ResultSet At(uint64_t snapshot, const std::string& sql) {
    db_.mutable_exec_context()->snapshot_override = snapshot;
    auto rs = db_.Query(sql);
    db_.mutable_exec_context()->snapshot_override =
        ExecContext::kSnapshotLatest;
    EXPECT_TRUE(rs.ok()) << rs.status().ToString() << " for: " << sql;
    return rs.ok() ? std::move(rs).value() : ResultSet{};
  }

  int64_t CountAt(uint64_t snapshot, const std::string& sql) {
    ResultSet rs = At(snapshot, sql);
    EXPECT_EQ(rs.rows.size(), 1u);
    return rs.rows.empty() ? -1 : rs.rows[0][0].int_value();
  }

  int64_t Write(const std::string& sql) {
    auto rs = db_.ExecuteWrite(sql);
    EXPECT_TRUE(rs.ok()) << rs.status().ToString() << " for: " << sql;
    return rs.ok() ? rs->rows[0][0].int_value() : -1;
  }

  Database db_;
  Table* table_ = nullptr;
};

TEST_F(VisibilityTest, ReaderBeforeInsertNeverSeesItsRows) {
  const uint64_t before = table_->committed_version();
  EXPECT_EQ(Write("insert into items values (5, 'n5')"), 1);
  const uint64_t after = table_->committed_version();
  EXPECT_EQ(after, before + 1);

  // A reader whose snapshot predates the write sees the old world...
  EXPECT_EQ(CountAt(before, "select count(*) from items"), 4);
  EXPECT_EQ(At(before, "select name from items where k = 5").rows.size(), 0u);
  // ...a reader admitted after sees exactly the new row.
  EXPECT_EQ(CountAt(after, "select count(*) from items"), 5);
  ResultSet rs = At(after, "select name from items where k = 5");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].ToString(), "n5");
  // The follow-latest default matches the post-write snapshot.
  EXPECT_EQ(CountAt(ExecContext::kSnapshotLatest,
                    "select count(*) from items"),
            5);
}

TEST_F(VisibilityTest, DeleteHidesTheRowOnlyFromLaterSnapshots) {
  const uint64_t before = table_->committed_version();
  EXPECT_EQ(Write("delete from items where k = 2"), 1);
  const uint64_t after = table_->committed_version();

  EXPECT_EQ(CountAt(before, "select count(*) from items"), 4);
  EXPECT_EQ(At(before, "select name from items where k = 2").rows.size(), 1u);
  EXPECT_EQ(CountAt(after, "select count(*) from items"), 3);
  EXPECT_EQ(At(after, "select name from items where k = 2").rows.size(), 0u);
}

TEST_F(VisibilityTest, UpdateNeverYieldsBothVersions) {
  const uint64_t before = table_->committed_version();
  EXPECT_EQ(Write("update items set name = 'renamed' where k = 3"), 1);
  const uint64_t after = table_->committed_version();

  // Exactly one version of the row is visible at every snapshot: the old
  // one before the write, the new one after — never both, never neither.
  ResultSet old_rs = At(before, "select name from items where k = 3");
  ASSERT_EQ(old_rs.rows.size(), 1u);
  EXPECT_EQ(old_rs.rows[0][0].ToString(), "n3");
  ResultSet new_rs = At(after, "select name from items where k = 3");
  ASSERT_EQ(new_rs.rows.size(), 1u);
  EXPECT_EQ(new_rs.rows[0][0].ToString(), "renamed");
  // UPDATE rewrites in place logically: the table's cardinality is
  // unchanged at both snapshots even though storage holds two versions.
  EXPECT_EQ(CountAt(before, "select count(*) from items"), 4);
  EXPECT_EQ(CountAt(after, "select count(*) from items"), 4);
}

TEST_F(VisibilityTest, OldSnapshotStaysBitIdenticalAcrossManyWrites) {
  const std::string all = "select k, name from items order by k, name";
  const uint64_t pinned = table_->committed_version();
  ResultSet frozen = At(pinned, all);

  EXPECT_EQ(Write("insert into items values (6, 'n6')"), 1);
  EXPECT_EQ(Write("update items set name = 'x' where k = 1"), 1);
  EXPECT_EQ(Write("delete from items where k = 4"), 1);

  ResultSet replay = At(pinned, all);
  ASSERT_EQ(replay.rows.size(), frozen.rows.size());
  for (size_t r = 0; r < frozen.rows.size(); ++r) {
    for (size_t c = 0; c < frozen.rows[r].size(); ++c) {
      EXPECT_EQ(replay.rows[r][c].TotalCompare(frozen.rows[r][c]), 0);
    }
  }
}

TEST_F(VisibilityTest, IndexScansHonorSnapshotVisibility) {
  // The per-chunk index stores *every* stored version of a row; snapshot
  // visibility is applied to the candidate positions it returns, exactly
  // as the sequential scan applies it to every position.
  ASSERT_TRUE(db_.CreateIndex("items", "k").ok());
  auto plan = db_.Explain("select name from items where k = 3");
  ASSERT_TRUE(plan.ok());
  ASSERT_NE(plan->find("IndexScan"), std::string::npos) << *plan;

  const uint64_t v_insert = table_->committed_version();
  EXPECT_EQ(Write("update items set name = 'renamed' where k = 3"), 1);
  const uint64_t v_update = table_->committed_version();
  EXPECT_EQ(Write("delete from items where k = 3"), 1);
  const uint64_t v_delete = table_->committed_version();
  EXPECT_EQ(Write("insert into items values (3, 'reborn')"), 1);
  const uint64_t v_reborn = table_->committed_version();

  const std::string q = "select name from items where k = 3";
  struct Expectation {
    uint64_t snapshot;
    std::vector<std::string> names;
  };
  const std::vector<Expectation> cases = {
      {v_insert, {"n3"}},
      {v_update, {"renamed"}},
      {v_delete, {}},
      {v_reborn, {"reborn"}},
  };
  for (const Expectation& c : cases) {
    ResultSet via_index = At(c.snapshot, q);
    ASSERT_EQ(via_index.rows.size(), c.names.size())
        << "at snapshot " << c.snapshot;
    for (size_t i = 0; i < c.names.size(); ++i) {
      EXPECT_EQ(via_index.rows[i][0].ToString(), c.names[i]);
    }
    // Bit-identity with the sequential scan at the same snapshot.
    db_.mutable_exec_context()->enable_index_scan = false;
    ResultSet via_scan = At(c.snapshot, q);
    db_.mutable_exec_context()->enable_index_scan = true;
    ASSERT_EQ(via_scan.rows.size(), via_index.rows.size());
    for (size_t r = 0; r < via_scan.rows.size(); ++r) {
      EXPECT_EQ(via_scan.rows[r][0].TotalCompare(via_index.rows[r][0]), 0);
    }
  }
}

TEST_F(VisibilityTest, WritesAreRejectedOutsideTheWritePath) {
  // Query() must refuse write statements: they bypass exclusive admission.
  EXPECT_FALSE(db_.Query("insert into items values (9, 'n9')").ok());
  EXPECT_FALSE(db_.Query("delete from items where k = 1").ok());
  // And the write path refuses reads.
  EXPECT_FALSE(db_.ExecuteWrite("select count(*) from items").ok());
}

TEST_F(VisibilityTest, AbortedInsertRowsAreNeverPublished) {
  // The hook fails after both rows were stamped at the write's version; the
  // statement must roll back, and the next successful write — which reuses
  // the aborted version number — must not publish the phantom rows.
  WriteMaintenanceHook failing;
  failing.after_write = [](Table*, const std::vector<Value>&,
                           uint64_t) -> Status {
    return Status::Internal("maintenance rejected the write");
  };
  db_.SetWriteHook("items", failing);
  EXPECT_FALSE(
      db_.ExecuteWrite("insert into items values (7, 'n7'), (8, 'n8')").ok());
  db_.SetWriteHook("items", WriteMaintenanceHook{});

  EXPECT_EQ(CountAt(ExecContext::kSnapshotLatest,
                    "select count(*) from items"),
            4);
  EXPECT_EQ(Write("insert into items values (9, 'n9')"), 1);
  EXPECT_EQ(CountAt(ExecContext::kSnapshotLatest,
                    "select count(*) from items"),
            5);
  EXPECT_EQ(At(ExecContext::kSnapshotLatest,
               "select name from items where k = 7")
                .rows.size(),
            0u);
  EXPECT_EQ(At(ExecContext::kSnapshotLatest,
               "select name from items where k = 8")
                .rows.size(),
            0u);
}

TEST_F(VisibilityTest, FailingHookAbortsDeleteAndUpdateCleanly) {
  WriteMaintenanceHook failing;
  failing.after_write = [](Table*, const std::vector<Value>&,
                           uint64_t) -> Status {
    return Status::Internal("maintenance rejected the write");
  };
  db_.SetWriteHook("items", failing);

  // The executor stamped rows dead (DELETE) and appended a new version
  // (UPDATE) before the hook ran; both writes must roll back fully.
  EXPECT_FALSE(db_.ExecuteWrite("delete from items where k = 2").ok());
  EXPECT_FALSE(
      db_.ExecuteWrite("update items set name = 'renamed' where k = 3").ok());

  db_.SetWriteHook("items", WriteMaintenanceHook{});
  // A later commit reuses the aborted version number: the deleted row must
  // stay visible and only the old version of the updated row may appear.
  EXPECT_EQ(Write("insert into items values (10, 'n10')"), 1);
  EXPECT_EQ(CountAt(ExecContext::kSnapshotLatest,
                    "select count(*) from items"),
            5);
  EXPECT_EQ(At(ExecContext::kSnapshotLatest,
               "select name from items where k = 2")
                .rows.size(),
            1u);
  ResultSet rs =
      At(ExecContext::kSnapshotLatest, "select name from items where k = 3");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].ToString(), "n3");
}

TEST_F(VisibilityTest, UpdateMatchingNothingCommitsAnEmptyVersion) {
  const uint64_t before = table_->committed_version();
  EXPECT_EQ(Write("update items set name = 'ghost' where k = 99"), 0);
  EXPECT_EQ(CountAt(table_->committed_version(),
                    "select count(*) from items"),
            4);
  EXPECT_GE(table_->committed_version(), before);
}

}  // namespace
}  // namespace conquer
