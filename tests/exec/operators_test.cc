// Unit tests for the Volcano operators, exercised directly (not through
// SQL) to pin the wide-row contract and per-operator behaviour.

#include "exec/operators.h"

#include <gtest/gtest.h>

namespace conquer {
namespace {

std::unique_ptr<Table> MakeNumbersTable(int n) {
  auto table = std::make_unique<Table>(
      TableSchema("nums", {{"a", DataType::kInt64}, {"b", DataType::kInt64}}));
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(table->Insert({Value::Int(i), Value::Int(i % 3)}).ok());
  }
  return table;
}

std::vector<Row> Drain(Operator* op) {
  std::vector<Row> rows;
  EXPECT_TRUE(op->Open().ok());
  Row row;
  while (true) {
    auto more = op->Next(&row);
    EXPECT_TRUE(more.ok()) << more.status().ToString();
    if (!more.ok() || !*more) break;
    rows.push_back(row);
  }
  op->Close();
  return rows;
}

ExprPtr Slot(int slot, DataType type = DataType::kInt64) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kColumnRef;
  e->slot = slot;
  e->resolved_type = type;
  return e;
}

TEST(SeqScanOpTest, ProducesWideRowsAtOffset) {
  auto table = MakeNumbersTable(3);
  SeqScanOp scan(table.get(), /*slot_offset=*/2, /*total_slots=*/5, nullptr);
  auto rows = Drain(&scan);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_TRUE(rows[0][0].is_null());
  EXPECT_TRUE(rows[0][1].is_null());
  EXPECT_EQ(rows[0][2].int_value(), 0);  // column a at offset 2
  EXPECT_EQ(rows[2][2].int_value(), 2);
  EXPECT_TRUE(rows[0][4].is_null());
}

TEST(SeqScanOpTest, PushedFilterApplies) {
  auto table = MakeNumbersTable(9);
  ExprPtr pred = Expr::MakeBinary(BinaryOp::kEq, Slot(1),
                                  Expr::MakeLiteral(Value::Int(0)));
  SeqScanOp scan(table.get(), 0, 2, std::move(pred));
  auto rows = Drain(&scan);
  EXPECT_EQ(rows.size(), 3u);  // b == 0 for a in {0,3,6}
}

TEST(SeqScanOpTest, ReopenRestartsTheScan) {
  auto table = MakeNumbersTable(4);
  SeqScanOp scan(table.get(), 0, 2, nullptr);
  EXPECT_EQ(Drain(&scan).size(), 4u);
  EXPECT_EQ(Drain(&scan).size(), 4u);  // second Open() rewinds
}

TEST(IndexScanOpTest, LooksUpOnlyMatchingRows) {
  auto table = MakeNumbersTable(9);
  ASSERT_TRUE(table->CreateIndex("b").ok());
  IndexScanOp scan(table.get(), /*column=*/1, Value::Int(1), 0, 2, nullptr);
  auto rows = Drain(&scan);
  EXPECT_EQ(rows.size(), 3u);  // a in {1,4,7}
  for (const Row& r : rows) EXPECT_EQ(r[1].int_value(), 1);
}

TEST(FilterOpTest, DropsNonMatching) {
  auto table = MakeNumbersTable(10);
  auto scan = std::make_unique<SeqScanOp>(table.get(), 0, 2, nullptr);
  ExprPtr pred = Expr::MakeBinary(BinaryOp::kGt, Slot(0),
                                  Expr::MakeLiteral(Value::Int(6)));
  FilterOp filter(std::move(scan), std::move(pred));
  EXPECT_EQ(Drain(&filter).size(), 3u);  // 7, 8, 9
}

TEST(HashJoinOpTest, JoinsOnSlots) {
  // Two tables sharing the wide layout [t1.a, t1.b, t2.x, t2.y].
  auto t1 = MakeNumbersTable(6);  // slots 0,1
  auto t2 = std::make_unique<Table>(
      TableSchema("other", {{"x", DataType::kInt64}, {"y", DataType::kString}}));
  ASSERT_TRUE(t2->Insert({Value::Int(0), Value::String("zero")}).ok());
  ASSERT_TRUE(t2->Insert({Value::Int(2), Value::String("two")}).ok());

  auto build = std::make_unique<SeqScanOp>(t2.get(), 2, 4, nullptr);
  auto probe = std::make_unique<SeqScanOp>(t1.get(), 0, 4, nullptr);
  // join on t1.b (slot 1) == t2.x (slot 2)
  HashJoinOp join(std::move(build), std::move(probe), {2}, {1},
                  /*build_slots=*/{2, 3}, /*probe_slots=*/{0, 1});
  auto rows = Drain(&join);
  // t1.b values: 0,1,2,0,1,2 -> matches for 0 (x2) and 2 (x2) = 4 rows.
  ASSERT_EQ(rows.size(), 4u);
  for (const Row& r : rows) {
    EXPECT_EQ(r[1].int_value(), r[2].int_value());  // join key equal
    EXPECT_FALSE(r[3].is_null());                   // build columns merged
  }
}

TEST(HashJoinOpTest, NullKeysNeverMatch) {
  auto t1 = std::make_unique<Table>(
      TableSchema("l", {{"k", DataType::kInt64}}));
  ASSERT_TRUE(t1->Insert({Value::Null()}).ok());
  ASSERT_TRUE(t1->Insert({Value::Int(1)}).ok());
  auto t2 = std::make_unique<Table>(
      TableSchema("r", {{"k", DataType::kInt64}}));
  ASSERT_TRUE(t2->Insert({Value::Null()}).ok());
  ASSERT_TRUE(t2->Insert({Value::Int(1)}).ok());

  auto build = std::make_unique<SeqScanOp>(t2.get(), 1, 2, nullptr);
  auto probe = std::make_unique<SeqScanOp>(t1.get(), 0, 2, nullptr);
  HashJoinOp join(std::move(build), std::move(probe), {1}, {0},
                  /*build_slots=*/{1}, /*probe_slots=*/{0});
  EXPECT_EQ(Drain(&join).size(), 1u);  // only 1 = 1; NULL != NULL
}

TEST(HashJoinOpTest, EmptyKeysMakeCrossProduct) {
  auto t1 = MakeNumbersTable(3);
  auto t2 = MakeNumbersTable(4);
  auto build = std::make_unique<SeqScanOp>(t2.get(), 2, 4, nullptr);
  auto probe = std::make_unique<SeqScanOp>(t1.get(), 0, 4, nullptr);
  HashJoinOp join(std::move(build), std::move(probe), {}, {},
                  /*build_slots=*/{2, 3}, /*probe_slots=*/{0, 1});
  EXPECT_EQ(Drain(&join).size(), 12u);
}

TEST(ProjectOpTest, EvaluatesExpressions) {
  auto table = MakeNumbersTable(3);
  auto scan = std::make_unique<SeqScanOp>(table.get(), 0, 2, nullptr);
  ExprPtr doubled = Expr::MakeBinary(BinaryOp::kMul, Slot(0),
                                     Expr::MakeLiteral(Value::Int(2)));
  std::vector<const Expr*> items = {doubled.get()};
  ProjectOp project(std::move(scan), items);
  auto rows = Drain(&project);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[2][0].int_value(), 4);
  EXPECT_EQ(rows[2].size(), 1u);  // narrow row
}

TEST(SortOpTest, SortsByMultipleKeys) {
  auto table = MakeNumbersTable(6);
  auto scan = std::make_unique<SeqScanOp>(table.get(), 0, 2, nullptr);
  ExprPtr a = Slot(0), b = Slot(1);
  std::vector<const Expr*> items = {b.get(), a.get()};
  auto project = std::make_unique<ProjectOp>(std::move(scan), items);
  SortOp sort(std::move(project), {{0, false}, {1, true}});
  auto rows = Drain(&sort);
  ASSERT_EQ(rows.size(), 6u);
  // b ascending, then a descending: (0,3),(0,0),(1,4),(1,1),(2,5),(2,2)
  EXPECT_EQ(rows[0][1].int_value(), 3);
  EXPECT_EQ(rows[1][1].int_value(), 0);
  EXPECT_EQ(rows[4][1].int_value(), 5);
}

TEST(DistinctOpTest, RemovesDuplicates) {
  auto table = MakeNumbersTable(9);
  auto scan = std::make_unique<SeqScanOp>(table.get(), 0, 2, nullptr);
  ExprPtr b = Slot(1);
  std::vector<const Expr*> items = {b.get()};
  auto project = std::make_unique<ProjectOp>(std::move(scan), items);
  DistinctOp distinct(std::move(project));
  EXPECT_EQ(Drain(&distinct).size(), 3u);
}

TEST(LimitOpTest, StopsEarly) {
  auto table = MakeNumbersTable(100);
  auto scan = std::make_unique<SeqScanOp>(table.get(), 0, 2, nullptr);
  LimitOp limit(std::move(scan), 7);
  EXPECT_EQ(Drain(&limit).size(), 7u);
}

TEST(StripColumnsOpTest, TruncatesRows) {
  auto table = MakeNumbersTable(2);
  auto scan = std::make_unique<SeqScanOp>(table.get(), 0, 2, nullptr);
  ExprPtr a = Slot(0), b = Slot(1);
  std::vector<const Expr*> items = {a.get(), b.get()};
  auto project = std::make_unique<ProjectOp>(std::move(scan), items);
  StripColumnsOp strip(std::move(project), 1);
  auto rows = Drain(&strip);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].size(), 1u);
}

TEST(HashAggregateOpTest, GroupsAndAggregates) {
  auto table = MakeNumbersTable(9);
  auto scan = std::make_unique<SeqScanOp>(table.get(), 0, 2, nullptr);
  ExprPtr key = Slot(1);
  ExprPtr sum_arg = Slot(0);
  ExprPtr sum = Expr::MakeAggregate(AggFunc::kSum, sum_arg->Clone());
  sum->resolved_type = DataType::kInt64;
  ExprPtr count = Expr::MakeAggregate(AggFunc::kCount, nullptr);
  std::vector<const Expr*> keys = {key.get()};
  std::vector<const Expr*> items = {key.get(), sum.get(), count.get()};
  HashAggregateOp agg(std::move(scan), keys, items);
  auto rows = Drain(&agg);
  ASSERT_EQ(rows.size(), 3u);
  for (const Row& r : rows) {
    int64_t k = r[0].int_value();
    // a values for key k: k, k+3, k+6 -> sum = 3k + 9, count = 3.
    EXPECT_EQ(r[1].int_value(), 3 * k + 9);
    EXPECT_EQ(r[2].int_value(), 3);
  }
}

TEST(ExplainPlanTest, RendersIndentedTree) {
  auto table = MakeNumbersTable(1);
  auto scan = std::make_unique<SeqScanOp>(table.get(), 0, 2, nullptr);
  LimitOp limit(std::move(scan), 1);
  std::string text = ExplainPlan(limit);
  EXPECT_NE(text.find("Limit(1)\n  SeqScan(nums)"), std::string::npos) << text;
}

}  // namespace
}  // namespace conquer
