// Unit tests for the expression evaluator: arithmetic typing, Kleene
// three-valued logic, date arithmetic, and error paths.

#include "exec/eval.h"

#include <gtest/gtest.h>

namespace conquer {
namespace {

ExprPtr Lit(Value v) { return Expr::MakeLiteral(std::move(v)); }

Value Eval(ExprPtr e) {
  static const Row kEmpty;
  auto v = EvalExpr(*e, kEmpty);
  EXPECT_TRUE(v.ok()) << v.status().ToString();
  return v.ok() ? *v : Value::Null();
}

TEST(EvalTest, IntegerArithmeticStaysIntegral) {
  Value v = Eval(Expr::MakeBinary(BinaryOp::kAdd, Lit(Value::Int(2)),
                                  Lit(Value::Int(3))));
  EXPECT_EQ(v.type(), DataType::kInt64);
  EXPECT_EQ(v.int_value(), 5);
  v = Eval(Expr::MakeBinary(BinaryOp::kMul, Lit(Value::Int(4)),
                            Lit(Value::Int(-6))));
  EXPECT_EQ(v.int_value(), -24);
}

TEST(EvalTest, MixedArithmeticWidensToDouble) {
  Value v = Eval(Expr::MakeBinary(BinaryOp::kMul, Lit(Value::Int(2)),
                                  Lit(Value::Double(1.5))));
  EXPECT_EQ(v.type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(v.double_value(), 3.0);
}

TEST(EvalTest, DivisionAlwaysDouble) {
  Value v = Eval(Expr::MakeBinary(BinaryOp::kDiv, Lit(Value::Int(7)),
                                  Lit(Value::Int(2))));
  EXPECT_EQ(v.type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(v.double_value(), 3.5);
}

TEST(EvalTest, DivisionByZeroYieldsNull) {
  Value v = Eval(Expr::MakeBinary(BinaryOp::kDiv, Lit(Value::Int(7)),
                                  Lit(Value::Int(0))));
  EXPECT_TRUE(v.is_null());
}

TEST(EvalTest, DateArithmetic) {
  auto day = ParseDate("1995-03-15");
  ASSERT_TRUE(day.ok());
  Value plus = Eval(Expr::MakeBinary(BinaryOp::kAdd, Lit(Value::Date(*day)),
                                     Lit(Value::Int(10))));
  EXPECT_EQ(plus.type(), DataType::kDate);
  EXPECT_EQ(plus.ToString(), "1995-03-25");
  Value diff = Eval(Expr::MakeBinary(BinaryOp::kSub, Lit(Value::Date(*day)),
                                     Lit(Value::Date(*day - 40))));
  EXPECT_EQ(diff.type(), DataType::kInt64);
  EXPECT_EQ(diff.int_value(), 40);
}

TEST(EvalTest, NullPropagatesThroughArithmetic) {
  EXPECT_TRUE(Eval(Expr::MakeBinary(BinaryOp::kAdd, Lit(Value::Null()),
                                    Lit(Value::Int(1))))
                  .is_null());
  EXPECT_TRUE(Eval(Expr::MakeBinary(BinaryOp::kLt, Lit(Value::Null()),
                                    Lit(Value::Int(1))))
                  .is_null());
}

TEST(EvalTest, KleeneAnd) {
  auto and_of = [&](Value a, Value b) {
    return Eval(Expr::MakeBinary(BinaryOp::kAnd, Lit(a), Lit(b)));
  };
  // FALSE AND NULL = FALSE (short circuit), NULL AND TRUE = NULL.
  EXPECT_FALSE(and_of(Value::Bool(false), Value::Null()).bool_value());
  EXPECT_FALSE(and_of(Value::Null(), Value::Bool(false)).bool_value());
  EXPECT_TRUE(and_of(Value::Null(), Value::Bool(true)).is_null());
  EXPECT_TRUE(and_of(Value::Null(), Value::Null()).is_null());
  EXPECT_TRUE(and_of(Value::Bool(true), Value::Bool(true)).bool_value());
}

TEST(EvalTest, KleeneOr) {
  auto or_of = [&](Value a, Value b) {
    return Eval(Expr::MakeBinary(BinaryOp::kOr, Lit(a), Lit(b)));
  };
  // TRUE OR NULL = TRUE, NULL OR FALSE = NULL.
  EXPECT_TRUE(or_of(Value::Bool(true), Value::Null()).bool_value());
  EXPECT_TRUE(or_of(Value::Null(), Value::Bool(true)).bool_value());
  EXPECT_TRUE(or_of(Value::Null(), Value::Bool(false)).is_null());
  EXPECT_FALSE(or_of(Value::Bool(false), Value::Bool(false)).bool_value());
}

TEST(EvalTest, NotOfNullIsNull) {
  EXPECT_TRUE(Eval(Expr::MakeUnary(UnaryOp::kNot, Lit(Value::Null())))
                  .is_null());
  EXPECT_FALSE(Eval(Expr::MakeUnary(UnaryOp::kNot, Lit(Value::Bool(true))))
                   .bool_value());
}

TEST(EvalTest, IsNullNeverReturnsNull) {
  EXPECT_TRUE(Eval(Expr::MakeUnary(UnaryOp::kIsNull, Lit(Value::Null())))
                  .bool_value());
  EXPECT_FALSE(Eval(Expr::MakeUnary(UnaryOp::kIsNull, Lit(Value::Int(1))))
                   .bool_value());
  EXPECT_TRUE(Eval(Expr::MakeUnary(UnaryOp::kIsNotNull, Lit(Value::Int(1))))
                  .bool_value());
}

TEST(EvalTest, LikeUsesPatternSemantics) {
  Value v = Eval(Expr::MakeBinary(BinaryOp::kLike,
                                  Lit(Value::String("PROMO BRUSHED BRASS")),
                                  Lit(Value::String("%BRASS"))));
  EXPECT_TRUE(v.bool_value());
}

TEST(EvalTest, LikeOnNonStringOperandsIsTypeError) {
  // The binder rejects these in SQL, but programmatically built expressions
  // reach the evaluator directly; this used to read a string out of an
  // INT64 Value (undefined behaviour).
  static const Row kEmpty;
  ExprPtr int_scrutinee = Expr::MakeBinary(
      BinaryOp::kLike, Lit(Value::Int(123)), Lit(Value::String("1%")));
  auto v = EvalExpr(*int_scrutinee, kEmpty);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kTypeError);

  ExprPtr int_pattern = Expr::MakeBinary(
      BinaryOp::kLike, Lit(Value::String("abc")), Lit(Value::Int(7)));
  v = EvalExpr(*int_pattern, kEmpty);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kTypeError);

  // NULL operands still yield NULL (checked before the type guard).
  EXPECT_TRUE(Eval(Expr::MakeBinary(BinaryOp::kLike, Lit(Value::Null()),
                                    Lit(Value::Int(7))))
                  .is_null());
}

TEST(EvalTest, ComparisonChainOfTypes) {
  EXPECT_TRUE(Eval(Expr::MakeBinary(BinaryOp::kLe, Lit(Value::Int(3)),
                                    Lit(Value::Double(3.0))))
                  .bool_value());
  EXPECT_TRUE(Eval(Expr::MakeBinary(BinaryOp::kNe, Lit(Value::String("a")),
                                    Lit(Value::String("b"))))
                  .bool_value());
}

TEST(EvalTest, UnaryNegation) {
  EXPECT_EQ(Eval(Expr::MakeUnary(UnaryOp::kNeg, Lit(Value::Int(5))))
                .int_value(),
            -5);
  EXPECT_DOUBLE_EQ(
      Eval(Expr::MakeUnary(UnaryOp::kNeg, Lit(Value::Double(2.5))))
          .double_value(),
      -2.5);
  EXPECT_TRUE(
      Eval(Expr::MakeUnary(UnaryOp::kNeg, Lit(Value::Null()))).is_null());
}

TEST(EvalTest, PredicateTreatsNullAsNotPassed) {
  static const Row kEmpty;
  ExprPtr null_pred = Expr::MakeBinary(BinaryOp::kEq, Lit(Value::Null()),
                                       Lit(Value::Int(1)));
  auto pass = EvalPredicate(*null_pred, kEmpty);
  ASSERT_TRUE(pass.ok());
  EXPECT_FALSE(*pass);
}

TEST(EvalTest, AggregateInRowEvaluatorIsInternalError) {
  static const Row kEmpty;
  ExprPtr agg = Expr::MakeAggregate(AggFunc::kSum, Lit(Value::Int(1)));
  auto v = EvalExpr(*agg, kEmpty);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace conquer
