// Zone-map pruning and runtime Bloom-filter edge cases.
//
// The unit half drives ZoneMapCanSkip directly on hand-built chunks: the
// dangerous inputs are the degenerate chunks (all-NULL, single row,
// min == max) and predicates sitting exactly on a zone boundary, where an
// off-by-one in the Compare logic silently drops or keeps a whole chunk.
// The end-to-end half checks that the counters surfaced in EXPLAIN ANALYZE
// (chunks_skipped, bloom_filtered) match a known chunk layout, and that an
// EMPTY build side yields a Bloom filter that rejects every probe row
// rather than degenerating into a full scan.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/database.h"
#include "exec/eval_batch.h"
#include "exec/query_stats.h"
#include "sql/ast.h"
#include "storage/table.h"

namespace conquer {
namespace {

// ---------------------------------------------------------------------------
// ZoneMapCanSkip unit tests.
// ---------------------------------------------------------------------------

ExprPtr ColSlot(int slot) {
  ExprPtr e = Expr::MakeColumnRef("t", "a");
  e->slot = slot;  // scans rebase local filters to column indexes
  return e;
}

ExprPtr Cmp(BinaryOp op, int slot, Value lit) {
  return Expr::MakeBinary(op, ColSlot(slot), Expr::MakeLiteral(std::move(lit)));
}

class ZoneSkipTest : public ::testing::Test {
 protected:
  // One chunk holding ints [10, 20] in column 0, an all-NULL column 1,
  // and a single-valued (min == max) column 2.
  ZoneSkipTest()
      : table_(TableSchema("t", {{"a", DataType::kInt64},
                                 {"b", DataType::kInt64},
                                 {"c", DataType::kInt64}})) {
    for (int v : {10, 15, 20}) {
      EXPECT_TRUE(
          table_.Insert({Value::Int(v), Value::Null(), Value::Int(7)}).ok());
    }
  }

  bool Skips(ExprPtr e) { return ZoneMapCanSkip(*e, table_, table_.chunk(0)); }

  Table table_;
};

TEST_F(ZoneSkipTest, EqOutsideAndInsideZone) {
  EXPECT_TRUE(Skips(Cmp(BinaryOp::kEq, 0, Value::Int(9))));
  EXPECT_TRUE(Skips(Cmp(BinaryOp::kEq, 0, Value::Int(21))));
  EXPECT_FALSE(Skips(Cmp(BinaryOp::kEq, 0, Value::Int(10))));   // == min
  EXPECT_FALSE(Skips(Cmp(BinaryOp::kEq, 0, Value::Int(20))));   // == max
  EXPECT_FALSE(Skips(Cmp(BinaryOp::kEq, 0, Value::Int(11))));   // gap: zones
  // only bound the range; a value absent from the chunk may not prune.
}

TEST_F(ZoneSkipTest, BoundaryOrderedComparisons) {
  // zone [10, 20]; each operator tested exactly on the boundary it prunes at.
  EXPECT_TRUE(Skips(Cmp(BinaryOp::kLt, 0, Value::Int(10))));    // a < min
  EXPECT_FALSE(Skips(Cmp(BinaryOp::kLt, 0, Value::Int(11))));
  EXPECT_TRUE(Skips(Cmp(BinaryOp::kLe, 0, Value::Int(9))));
  EXPECT_FALSE(Skips(Cmp(BinaryOp::kLe, 0, Value::Int(10))));   // a <= min hits
  EXPECT_TRUE(Skips(Cmp(BinaryOp::kGt, 0, Value::Int(20))));    // a > max
  EXPECT_FALSE(Skips(Cmp(BinaryOp::kGt, 0, Value::Int(19))));
  EXPECT_TRUE(Skips(Cmp(BinaryOp::kGe, 0, Value::Int(21))));
  EXPECT_FALSE(Skips(Cmp(BinaryOp::kGe, 0, Value::Int(20))));   // a >= max hits
}

TEST_F(ZoneSkipTest, AllNullColumnSkipsEveryComparison) {
  for (BinaryOp op : {BinaryOp::kEq, BinaryOp::kNe, BinaryOp::kLt,
                      BinaryOp::kLe, BinaryOp::kGt, BinaryOp::kGe}) {
    EXPECT_TRUE(Skips(Cmp(op, 1, Value::Int(0)))) << BinaryOpToString(op);
  }
}

TEST_F(ZoneSkipTest, MinEqualsMaxColumn) {
  // Every value is 7: a <> 7 matches nothing, a = 7 everything.
  EXPECT_TRUE(Skips(Cmp(BinaryOp::kNe, 2, Value::Int(7))));
  EXPECT_FALSE(Skips(Cmp(BinaryOp::kNe, 2, Value::Int(8))));
  EXPECT_FALSE(Skips(Cmp(BinaryOp::kEq, 2, Value::Int(7))));
  EXPECT_TRUE(Skips(Cmp(BinaryOp::kEq, 2, Value::Int(8))));
}

TEST_F(ZoneSkipTest, NullLiteralNeverMatchesARow) {
  EXPECT_TRUE(Skips(Cmp(BinaryOp::kEq, 0, Value::Null())));
  EXPECT_TRUE(Skips(Cmp(BinaryOp::kLt, 0, Value::Null())));
}

TEST_F(ZoneSkipTest, TypeMismatchNeverPrunes) {
  // A string literal against an int column raises in evaluation; pruning
  // must not silently swallow the type error by skipping the chunk.
  EXPECT_FALSE(Skips(Cmp(BinaryOp::kEq, 0, Value::String("x"))));
  EXPECT_FALSE(Skips(Cmp(BinaryOp::kLt, 0, Value::String("x"))));
}

TEST_F(ZoneSkipTest, ConjunctionAndDisjunction) {
  auto in_zone = [&] { return Cmp(BinaryOp::kEq, 0, Value::Int(15)); };
  auto off_zone = [&] { return Cmp(BinaryOp::kEq, 0, Value::Int(99)); };
  // AND skips if either side proves empty; OR needs both.
  EXPECT_TRUE(Skips(
      Expr::MakeBinary(BinaryOp::kAnd, in_zone(), off_zone())));
  EXPECT_FALSE(Skips(
      Expr::MakeBinary(BinaryOp::kAnd, in_zone(), in_zone())));
  EXPECT_TRUE(Skips(
      Expr::MakeBinary(BinaryOp::kOr, off_zone(), off_zone())));
  EXPECT_FALSE(Skips(
      Expr::MakeBinary(BinaryOp::kOr, in_zone(), off_zone())));
}

TEST(ZoneSkipSingleRowTest, SingleRowChunksPruneExactly) {
  Table table(TableSchema("t", {{"a", DataType::kInt64}}),
              /*chunk_capacity=*/1);
  for (int v : {3, 5, 8}) ASSERT_TRUE(table.Insert({Value::Int(v)}).ok());
  ASSERT_EQ(table.num_chunks(), 3u);
  ExprPtr eq5 = Cmp(BinaryOp::kEq, 0, Value::Int(5));
  EXPECT_TRUE(ZoneMapCanSkip(*eq5, table, table.chunk(0)));
  EXPECT_FALSE(ZoneMapCanSkip(*eq5, table, table.chunk(1)));
  EXPECT_TRUE(ZoneMapCanSkip(*eq5, table, table.chunk(2)));
}

// ---------------------------------------------------------------------------
// End-to-end: counters in QueryStats must match a known chunk layout.
// ---------------------------------------------------------------------------

uint64_t SumMetric(const PlanNodeStats& node,
                   uint64_t OperatorMetrics::*field) {
  uint64_t total = node.metrics.*field;
  for (const auto& child : node.children) total += SumMetric(child, field);
  return total;
}

class PruningE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        db_.CreateTable(TableSchema("fact", {{"k", DataType::kInt64},
                                             {"v", DataType::kDouble}}))
            .ok());
    ASSERT_TRUE(db_.CreateTable(TableSchema("dim", {{"k", DataType::kInt64},
                                                    {"w", DataType::kDouble}}))
                    .ok());
    std::vector<Row> fact;
    for (int i = 0; i < 100; ++i) {
      fact.push_back({Value::Int(i), Value::Double(i * 0.25)});
    }
    ASSERT_TRUE(db_.InsertMany("fact", std::move(fact)).ok());
    std::vector<Row> dim;
    for (int i = 0; i < 10; ++i) {
      dim.push_back({Value::Int(i * 10), Value::Double(i)});
    }
    ASSERT_TRUE(db_.InsertMany("dim", std::move(dim)).ok());
    // fact rows are inserted in key order, so capacity 10 gives ten chunks
    // with disjoint zones [0,9], [10,19], ..., [90,99].
    Rechunk("fact", 10);
  }

  void Rechunk(const std::string& name, size_t capacity) {
    auto t = db_.GetTable(name);
    ASSERT_TRUE(t.ok());
    (*t)->Rechunk(capacity);
  }

  ResultSet Run(const std::string& sql, QueryStats* stats) {
    auto rs = db_.Query(sql, stats);
    EXPECT_TRUE(rs.ok()) << rs.status().ToString();
    return rs.ok() ? std::move(rs).value() : ResultSet{};
  }

  Database db_;
};

TEST_F(PruningE2eTest, ChunksSkippedMatchesLayout) {
  QueryStats stats;
  ResultSet rs = Run("select v from fact where k >= 95", &stats);
  EXPECT_EQ(rs.rows.size(), 5u);
  // Chunks [0,9] ... [80,89] are provably empty; only [90,99] is scanned.
  EXPECT_EQ(SumMetric(stats.plan, &OperatorMetrics::chunks_skipped), 9u);
}

TEST_F(PruningE2eTest, PruningDisabledScansEverything) {
  db_.mutable_exec_context()->enable_zone_pruning = false;
  QueryStats stats;
  ResultSet rs = Run("select v from fact where k >= 95", &stats);
  db_.mutable_exec_context()->enable_zone_pruning = true;
  EXPECT_EQ(rs.rows.size(), 5u);
  EXPECT_EQ(SumMetric(stats.plan, &OperatorMetrics::chunks_skipped), 0u);
}

TEST_F(PruningE2eTest, EmptyBuildSideBloomRejectsAllProbeRows) {
  QueryStats stats;
  // No dim row has w < -100: the join build side is empty, so its Bloom
  // filter must reject every fact row at the scan — not fall back to
  // probing the (empty) hash table with the full fact table.
  ResultSet rs = Run(
      "select f.v from fact f, dim d where f.k = d.k and d.w < -100", &stats);
  EXPECT_EQ(rs.rows.size(), 0u);
  EXPECT_EQ(SumMetric(stats.plan, &OperatorMetrics::bloom_filtered), 100u);
  EXPECT_EQ(SumMetric(stats.plan, &OperatorMetrics::probe_rows), 0u);
}

TEST_F(PruningE2eTest, BloomFilterDropsNonMatchingProbeRows) {
  QueryStats stats;
  ResultSet rs = Run(
      "select f.v, d.w from fact f, dim d where f.k = d.k", &stats);
  EXPECT_EQ(rs.rows.size(), 10u);  // keys 0, 10, ..., 90
  // 90 of the 100 fact keys miss the 10 build keys; the Bloom filter drops
  // (almost) all of them before the join. Allow false positives but insist
  // the filter does real work, and that no true match was dropped (the
  // result size above proves that).
  uint64_t dropped = SumMetric(stats.plan, &OperatorMetrics::bloom_filtered);
  EXPECT_GE(dropped, 80u);
  EXPECT_LE(dropped, 90u);
  EXPECT_EQ(SumMetric(stats.plan, &OperatorMetrics::probe_rows), 100u - dropped);
}

TEST_F(PruningE2eTest, RuntimeFiltersDisabledProbesEverything) {
  db_.mutable_exec_context()->enable_runtime_filters = false;
  QueryStats stats;
  ResultSet rs = Run(
      "select f.v from fact f, dim d where f.k = d.k and d.w < -100", &stats);
  db_.mutable_exec_context()->enable_runtime_filters = true;
  EXPECT_EQ(rs.rows.size(), 0u);
  EXPECT_EQ(SumMetric(stats.plan, &OperatorMetrics::bloom_filtered), 0u);
  EXPECT_EQ(SumMetric(stats.plan, &OperatorMetrics::probe_rows), 100u);
}

TEST_F(PruningE2eTest, ExplainAnalyzeRendersCounters) {
  auto rs = db_.Query("explain analyze select v from fact where k >= 95");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  std::string text;
  for (const Row& r : rs->rows) text += r[0].string_value() + "\n";
  EXPECT_NE(text.find("chunks_skipped="), std::string::npos) << text;
}

}  // namespace
}  // namespace conquer
