// Tests for executor observability: per-operator metrics, QueryStats phase
// accounting, and the EXPLAIN / EXPLAIN ANALYZE surface.

#include "exec/query_stats.h"

#include <gtest/gtest.h>

#include "engine/database.h"

namespace conquer {
namespace {

class QueryStatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable(TableSchema("item", {{"id", DataType::kInt64},
                                                     {"grp", DataType::kInt64},
                                                     {"price", DataType::kDouble}}))
                    .ok());
    for (int64_t i = 0; i < 20; ++i) {
      ASSERT_TRUE(db_.Insert("item", {Value::Int(i), Value::Int(i % 4),
                                      Value::Double(1.5 * i)})
                      .ok());
    }
    ASSERT_TRUE(db_.CreateTable(TableSchema("grp", {{"g", DataType::kInt64},
                                                    {"name", DataType::kString}}))
                    .ok());
    for (int64_t g = 0; g < 4; ++g) {
      ASSERT_TRUE(db_.Insert("grp", {Value::Int(g),
                                     Value::String("g" + std::to_string(g))})
                      .ok());
    }
  }
  Database db_;
};

TEST_F(QueryStatsTest, PhaseTimingsAndRowCountFilled) {
  QueryStats stats;
  auto rs = db_.Query("select id from item where grp = 1", &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(stats.rows_returned, 5u);
  EXPECT_GT(stats.parse_seconds, 0.0);
  EXPECT_GT(stats.bind_seconds, 0.0);
  EXPECT_GT(stats.plan_seconds, 0.0);
  EXPECT_GT(stats.exec_seconds, 0.0);
  EXPECT_GE(stats.total_seconds(), stats.exec_seconds);
  EXPECT_FALSE(stats.plan.description.empty());
}

TEST_F(QueryStatsTest, RootMetricsMatchResultSet) {
  QueryStats stats;
  auto rs = db_.Query("select id from item where grp = 1", &stats);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(stats.plan.metrics.rows_produced, rs->num_rows());
  // The root is drained batch-at-a-time: at least one NextBatch() carrying
  // rows plus the end-of-stream pull, and no per-row Next() calls.
  EXPECT_GE(stats.plan.metrics.batches, 2u);
  EXPECT_EQ(stats.plan.metrics.next_calls, 0u);
}

TEST_F(QueryStatsTest, HashJoinReportsBuildAndProbeSides) {
  QueryStats stats;
  auto rs = db_.Query(
      "select i.id, g.name from item i, grp g where i.grp = g.g", &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->num_rows(), 20u);

  // Find the join node anywhere in the tree.
  const PlanNodeStats* join = nullptr;
  auto find = [&](const PlanNodeStats& node, auto&& self) -> void {
    if (node.description.rfind("HashJoin", 0) == 0) join = &node;
    for (const auto& c : node.children) self(c, self);
  };
  find(stats.plan, find);
  ASSERT_NE(join, nullptr) << stats.ToString();
  // One side (4 or 20 rows) was built, the other probed, whichever order
  // the planner picked.
  EXPECT_EQ(join->metrics.build_rows + join->metrics.probe_rows, 24u);
  EXPECT_GT(join->metrics.build_rows, 0u);
  EXPECT_GT(join->metrics.probe_rows, 0u);
  EXPECT_EQ(join->metrics.hash_entries, join->metrics.build_rows);
  EXPECT_GT(join->metrics.peak_memory_bytes, 0u);
  EXPECT_GT(stats.peak_memory_bytes, 0u);
}

TEST_F(QueryStatsTest, AggregateCountersAndPrefixLookups) {
  QueryStats stats;
  auto rs = db_.Query(
      "select grp, sum(price) from item group by grp", &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->num_rows(), 4u);
  EXPECT_EQ(stats.OperatorRows("HashAggregate"), 4u);
  EXPECT_GE(stats.OperatorSelfSeconds("HashAggregate"), 0.0);
  double share = stats.OperatorShare("HashAggregate");
  EXPECT_GE(share, 0.0);
  EXPECT_LE(share, 1.0);
  EXPECT_EQ(stats.OperatorRows("NoSuchOperator"), 0u);
  EXPECT_EQ(stats.OperatorSelfSeconds("NoSuchOperator"), 0.0);

  const PlanNodeStats* agg = nullptr;
  auto find = [&](const PlanNodeStats& node, auto&& self) -> void {
    if (node.description.rfind("HashAggregate", 0) == 0) agg = &node;
    for (const auto& c : node.children) self(c, self);
  };
  find(stats.plan, find);
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->metrics.hash_entries, 4u);
  EXPECT_GT(agg->metrics.peak_memory_bytes, 0u);
}

TEST_F(QueryStatsTest, SelfTimeNeverExceedsTotal) {
  QueryStats stats;
  ASSERT_TRUE(
      db_.Query("select i.id, g.name from item i, grp g where i.grp = g.g "
                "order by i.id",
                &stats)
          .ok());
  auto check = [&](const PlanNodeStats& node, auto&& self) -> void {
    EXPECT_GE(node.self_seconds, 0.0);
    EXPECT_LE(node.self_seconds, node.metrics.total_seconds() + 1e-9)
        << node.description;
    for (const auto& c : node.children) self(c, self);
  };
  check(stats.plan, check);
}

TEST_F(QueryStatsTest, ExplainReturnsPlanText) {
  auto rs = db_.Query("explain select id from item where grp = 1");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->num_columns(), 1u);
  EXPECT_EQ(rs->column_names[0], "QUERY PLAN");
  ASSERT_GT(rs->num_rows(), 0u);
  // Plain EXPLAIN shows the plan but no runtime counters.
  bool saw_scan = false;
  for (const Row& row : rs->rows) {
    const std::string& line = row[0].string_value();
    EXPECT_EQ(line.find("rows="), std::string::npos) << line;
    if (line.find("SeqScan(item") != std::string::npos) saw_scan = true;
  }
  EXPECT_TRUE(saw_scan);
}

TEST_F(QueryStatsTest, ExplainAnalyzeExecutesAndAnnotates) {
  QueryStats stats;
  auto rs = db_.Query(
      "explain analyze select grp, sum(price) from item group by grp",
      &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->num_columns(), 1u);
  EXPECT_EQ(rs->column_names[0], "QUERY PLAN");
  // The query really ran: the caller-supplied stats carry the counters.
  EXPECT_EQ(stats.rows_returned, 4u);
  EXPECT_EQ(stats.OperatorRows("HashAggregate"), 4u);

  std::string all;
  for (const Row& row : rs->rows) {
    all += row[0].string_value();
    all += '\n';
  }
  EXPECT_NE(all.find("HashAggregate"), std::string::npos) << all;
  EXPECT_NE(all.find("rows=4"), std::string::npos) << all;
  EXPECT_NE(all.find("self="), std::string::npos) << all;
  EXPECT_NE(all.find("phases:"), std::string::npos) << all;
}

TEST_F(QueryStatsTest, ExplainAnalyzeStringHelper) {
  auto text = db_.ExplainAnalyze("select id from item where grp = 1");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("rows=5"), std::string::npos) << *text;
}

TEST_F(QueryStatsTest, MetricsResetBetweenRuns) {
  // Re-running a query must not accumulate counters from the prior run.
  QueryStats first, second;
  ASSERT_TRUE(db_.Query("select id from item", &first).ok());
  ASSERT_TRUE(db_.Query("select id from item", &second).ok());
  EXPECT_EQ(first.plan.metrics.rows_produced,
            second.plan.metrics.rows_produced);
  EXPECT_EQ(first.plan.metrics.next_calls, second.plan.metrics.next_calls);
}

}  // namespace
}  // namespace conquer
