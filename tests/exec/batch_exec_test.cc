// Batch-at-a-time execution: results must be identical (bit-identical for
// doubles) for every batch size, including the degenerate size 1 and a
// size straddling the default capacity; and the vectorized predicate path
// must handle the all-pass / all-drop extremes of a selection vector.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/database.h"
#include "exec/batch.h"
#include "exec/eval_batch.h"

namespace conquer {
namespace {

uint64_t Bits(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof u);
  return u;
}

void ExpectSameResults(const ResultSet& a, const ResultSet& b,
                       const std::string& label) {
  ASSERT_EQ(a.rows.size(), b.rows.size()) << label;
  for (size_t r = 0; r < a.rows.size(); ++r) {
    ASSERT_EQ(a.rows[r].size(), b.rows[r].size()) << label;
    for (size_t c = 0; c < a.rows[r].size(); ++c) {
      const Value& va = a.rows[r][c];
      const Value& vb = b.rows[r][c];
      if (va.type() == DataType::kDouble && vb.type() == DataType::kDouble) {
        EXPECT_EQ(Bits(va.double_value()), Bits(vb.double_value()))
            << label << ": row " << r << " col " << c;
      } else {
        EXPECT_EQ(va.TotalCompare(vb), 0)
            << label << ": row " << r << " col " << c;
      }
    }
  }
}

class BatchSizeInvarianceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable(TableSchema("fact", {{"k", DataType::kInt64},
                                                     {"s", DataType::kString},
                                                     {"v", DataType::kDouble}}))
                    .ok());
    ASSERT_TRUE(db_.CreateTable(TableSchema("dim", {{"k", DataType::kInt64},
                                                    {"w", DataType::kDouble}}))
                    .ok());
    Rng rng(99);
    std::vector<Row> fact;
    // Enough rows that a 1024-capacity pipeline needs several batches and a
    // 1025-capacity pipeline gets a short final batch.
    for (int i = 0; i < 3000; ++i) {
      fact.push_back({Value::Int(rng.Uniform(0, 49)),
                      Value::String("s" + std::to_string(rng.Uniform(0, 9))),
                      Value::Double(rng.NextDouble() - 0.5)});
    }
    ASSERT_TRUE(db_.InsertMany("fact", std::move(fact)).ok());
    std::vector<Row> dim;
    for (int i = 0; i < 50; ++i) {
      dim.push_back({Value::Int(i), Value::Double(rng.NextDouble())});
    }
    ASSERT_TRUE(db_.InsertMany("dim", std::move(dim)).ok());
  }

  ResultSet RunAt(const std::string& sql, size_t batch_size) {
    db_.mutable_exec_context()->batch_size = batch_size;
    auto rs = db_.Query(sql);
    EXPECT_TRUE(rs.ok()) << rs.status().ToString();
    db_.mutable_exec_context()->batch_size = RowBatch::kDefaultCapacity;
    return rs.ok() ? std::move(rs).value() : ResultSet{};
  }

  void ExpectInvariant(const std::string& sql) {
    ResultSet baseline = RunAt(sql, RowBatch::kDefaultCapacity);
    for (size_t batch_size :
         {size_t{1}, size_t{7}, RowBatch::kDefaultCapacity + 1}) {
      ExpectSameResults(baseline, RunAt(sql, batch_size),
                        sql + " @batch_size=" + std::to_string(batch_size));
    }
  }

  Database db_;
};

TEST_F(BatchSizeInvarianceTest, ScanFilterProject) {
  ExpectInvariant(
      "select k, v from fact where v > 0.25 and s <> 's3' order by k, v");
}

TEST_F(BatchSizeInvarianceTest, JoinGroupBySum) {
  ExpectInvariant(
      "select fact.s, sum(fact.v), sum(dim.w), count(*) from fact, dim "
      "where fact.k = dim.k group by fact.s order by fact.s");
}

TEST_F(BatchSizeInvarianceTest, DistinctAndLimit) {
  ExpectInvariant("select distinct s from fact order by s");
  ExpectInvariant("select k, s from fact order by k, s, v limit 10");
}

TEST_F(BatchSizeInvarianceTest, EmptyResult) {
  ExpectInvariant("select k from fact where v > 99.0");
}

// ---------------------------------------------------------------------------
// FilterSelection edge cases: the selection-vector extremes.

ExprPtr ColRef(int slot) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kColumnRef;
  e->slot = slot;
  e->resolved_type = DataType::kInt64;
  return e;
}

std::vector<Row> MakeIntRows(int n) {
  std::vector<Row> rows;
  for (int i = 0; i < n; ++i) rows.push_back({Value::Int(i)});
  return rows;
}

SelVector FullSelection(size_t n) {
  SelVector sel(n);
  for (size_t i = 0; i < n; ++i) sel[i] = static_cast<uint32_t>(i);
  return sel;
}

TEST(FilterSelectionTest, AllTrueKeepsEveryPosition) {
  std::vector<Row> rows = MakeIntRows(100);
  SelVector sel = FullSelection(rows.size());
  ExprPtr pred = Expr::MakeBinary(BinaryOp::kGe, ColRef(0),
                                  Expr::MakeLiteral(Value::Int(0)));
  uint64_t dict_hits = 0;
  ASSERT_TRUE(FilterSelection(*pred, rows, nullptr, &sel, &dict_hits).ok());
  ASSERT_EQ(sel.size(), rows.size());
  for (size_t i = 0; i < sel.size(); ++i) {
    EXPECT_EQ(sel[i], static_cast<uint32_t>(i));  // order preserved
  }
}

TEST(FilterSelectionTest, AllFalseEmptiesTheSelection) {
  std::vector<Row> rows = MakeIntRows(100);
  SelVector sel = FullSelection(rows.size());
  ExprPtr pred = Expr::MakeBinary(BinaryOp::kLt, ColRef(0),
                                  Expr::MakeLiteral(Value::Int(0)));
  uint64_t dict_hits = 0;
  ASSERT_TRUE(FilterSelection(*pred, rows, nullptr, &sel, &dict_hits).ok());
  EXPECT_TRUE(sel.empty());
}

TEST(FilterSelectionTest, EmptySelectionStaysEmpty) {
  std::vector<Row> rows = MakeIntRows(10);
  SelVector sel;  // nothing selected to begin with
  ExprPtr pred = Expr::MakeBinary(BinaryOp::kGe, ColRef(0),
                                  Expr::MakeLiteral(Value::Int(0)));
  uint64_t dict_hits = 0;
  ASSERT_TRUE(FilterSelection(*pred, rows, nullptr, &sel, &dict_hits).ok());
  EXPECT_TRUE(sel.empty());
}

TEST(FilterSelectionTest, NullComparisonsDropRows) {
  // SQL semantics: a NULL comparison is not TRUE, so the row drops.
  std::vector<Row> rows = MakeIntRows(4);
  rows[1][0] = Value::Null();
  rows[3][0] = Value::Null();
  SelVector sel = FullSelection(rows.size());
  ExprPtr pred = Expr::MakeBinary(BinaryOp::kGe, ColRef(0),
                                  Expr::MakeLiteral(Value::Int(0)));
  uint64_t dict_hits = 0;
  ASSERT_TRUE(FilterSelection(*pred, rows, nullptr, &sel, &dict_hits).ok());
  ASSERT_EQ(sel.size(), 2u);
  EXPECT_EQ(sel[0], 0u);
  EXPECT_EQ(sel[1], 2u);
}

}  // namespace
}  // namespace conquer
