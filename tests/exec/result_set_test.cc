// Unit tests for ResultSet utilities and AST printing corner cases.

#include "exec/result_set.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace conquer {
namespace {

ResultSet MakeResultSet() {
  ResultSet rs;
  rs.column_names = {"id", "amount"};
  rs.column_types = {DataType::kString, DataType::kInt64};
  rs.rows.push_back({Value::String("a"), Value::Int(10)});
  rs.rows.push_back({Value::String("b"), Value::Int(20)});
  return rs;
}

TEST(ResultSetTest, FindColumnIsCaseInsensitive) {
  ResultSet rs = MakeResultSet();
  EXPECT_EQ(rs.FindColumn("ID"), 0);
  EXPECT_EQ(rs.FindColumn("Amount"), 1);
  EXPECT_EQ(rs.FindColumn("missing"), -1);
}

TEST(ResultSetTest, ContainsRowComparesByValue) {
  ResultSet rs = MakeResultSet();
  EXPECT_TRUE(rs.ContainsRow({Value::String("a"), Value::Int(10)}));
  EXPECT_FALSE(rs.ContainsRow({Value::String("a"), Value::Int(11)}));
  EXPECT_FALSE(rs.ContainsRow({Value::String("a")}));  // arity mismatch
}

TEST(ResultSetTest, ToStringRendersHeaderAndRows) {
  ResultSet rs = MakeResultSet();
  std::string text = rs.ToString();
  EXPECT_NE(text.find("| id"), std::string::npos) << text;
  EXPECT_NE(text.find("| 20"), std::string::npos) << text;
  EXPECT_NE(text.find("(2 rows)"), std::string::npos) << text;
}

TEST(ResultSetTest, ToStringCapsRows) {
  ResultSet rs = MakeResultSet();
  std::string text = rs.ToString(/*max_rows=*/1);
  EXPECT_NE(text.find("(1 of 2 rows shown)"), std::string::npos) << text;
}

TEST(ResultSetTest, EmptyResultStillRendersHeader) {
  ResultSet rs;
  rs.column_names = {"x"};
  rs.column_types = {DataType::kInt64};
  std::string text = rs.ToString();
  EXPECT_NE(text.find("| x |"), std::string::npos) << text;
  EXPECT_NE(text.find("(0 rows)"), std::string::npos) << text;
}

// ---- AST corner cases ----

TEST(AstTest, CollectConjunctsFlattensNestedAnds) {
  auto stmt = Parser::Parse(
      "select a from t where a = 1 and (b = 2 and c = 3) and d = 4");
  ASSERT_TRUE(stmt.ok());
  std::vector<const Expr*> conjuncts;
  CollectConjuncts((*stmt)->where.get(), &conjuncts);
  EXPECT_EQ(conjuncts.size(), 4u);
}

TEST(AstTest, CollectConjunctsDoesNotSplitOr) {
  auto stmt = Parser::Parse("select a from t where a = 1 or b = 2");
  ASSERT_TRUE(stmt.ok());
  std::vector<const Expr*> conjuncts;
  CollectConjuncts((*stmt)->where.get(), &conjuncts);
  EXPECT_EQ(conjuncts.size(), 1u);
}

TEST(AstTest, CollectConjunctsOnNullIsEmpty) {
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(nullptr, &conjuncts);
  EXPECT_TRUE(conjuncts.empty());
}

TEST(AstTest, ContainsAggregateFindsNestedCalls) {
  auto stmt = Parser::Parse("select 1 + sum(a) * 2 from t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE((*stmt)->select_list[0].expr->ContainsAggregate());
  auto plain = Parser::Parse("select 1 + a * 2 from t");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE((*plain)->select_list[0].expr->ContainsAggregate());
}

TEST(AstTest, OutputNamePrefersAliasThenColumnThenText) {
  auto stmt = Parser::Parse("select a as x, b, a + b from t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->select_list[0].OutputName(), "x");
  EXPECT_EQ((*stmt)->select_list[1].OutputName(), "b");
  EXPECT_EQ((*stmt)->select_list[2].OutputName(), "a + b");
}

TEST(AstTest, ToStringEscapesStringLiterals) {
  auto stmt = Parser::Parse("select a from t where b = 'it''s'");
  ASSERT_TRUE(stmt.ok());
  std::string printed = (*stmt)->ToString();
  EXPECT_NE(printed.find("'it''s'"), std::string::npos) << printed;
  // And the printed form reparses to the same value.
  auto again = Parser::Parse(printed);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->where->right->literal.string_value(), "it's");
}

TEST(AstTest, BinaryOpNames) {
  EXPECT_STREQ(BinaryOpToString(BinaryOp::kEq), "=");
  EXPECT_STREQ(BinaryOpToString(BinaryOp::kNe), "<>");
  EXPECT_STREQ(BinaryOpToString(BinaryOp::kAnd), "AND");
  EXPECT_STREQ(BinaryOpToString(BinaryOp::kLike), "LIKE");
  EXPECT_TRUE(IsComparisonOp(BinaryOp::kLe));
  EXPECT_FALSE(IsComparisonOp(BinaryOp::kAdd));
  EXPECT_FALSE(IsComparisonOp(BinaryOp::kAnd));
}

}  // namespace
}  // namespace conquer
