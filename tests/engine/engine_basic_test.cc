#include "engine/database.h"

#include <gtest/gtest.h>

#include "types/value.h"

namespace conquer {
namespace {

class EngineBasicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableSchema customer("customer", {{"id", DataType::kString},
                                      {"name", DataType::kString},
                                      {"balance", DataType::kInt64},
                                      {"prob", DataType::kDouble}});
    ASSERT_TRUE(db_.CreateTable(customer).ok());
    Insert("customer", {Value::String("c1"), Value::String("John"),
                        Value::Int(20000), Value::Double(0.7)});
    Insert("customer", {Value::String("c1"), Value::String("John"),
                        Value::Int(30000), Value::Double(0.3)});
    Insert("customer", {Value::String("c2"), Value::String("Mary"),
                        Value::Int(27000), Value::Double(0.2)});
    Insert("customer", {Value::String("c2"), Value::String("Marion"),
                        Value::Int(5000), Value::Double(0.8)});

    TableSchema orders("orders", {{"id", DataType::kString},
                                  {"cidfk", DataType::kString},
                                  {"quantity", DataType::kInt64},
                                  {"prob", DataType::kDouble}});
    ASSERT_TRUE(db_.CreateTable(orders).ok());
    Insert("orders", {Value::String("o1"), Value::String("c1"), Value::Int(3),
                      Value::Double(1.0)});
    Insert("orders", {Value::String("o2"), Value::String("c1"), Value::Int(2),
                      Value::Double(0.5)});
    Insert("orders", {Value::String("o2"), Value::String("c2"), Value::Int(5),
                      Value::Double(0.5)});
  }

  void Insert(const std::string& table, Row row) {
    ASSERT_TRUE(db_.Insert(table, std::move(row)).ok());
  }

  ResultSet Query(const std::string& sql) {
    auto rs = db_.Query(sql);
    EXPECT_TRUE(rs.ok()) << rs.status().ToString() << " for: " << sql;
    if (!rs.ok()) return ResultSet{};
    return std::move(rs).value();
  }

  Database db_;
};

TEST_F(EngineBasicTest, SelectAllColumns) {
  ResultSet rs = Query("select * from customer");
  EXPECT_EQ(rs.num_rows(), 4u);
  EXPECT_EQ(rs.num_columns(), 4u);
  EXPECT_EQ(rs.column_names[0], "id");
  EXPECT_EQ(rs.column_names[2], "balance");
}

TEST_F(EngineBasicTest, SelectWithFilter) {
  ResultSet rs = Query("select name from customer where balance > 10000");
  EXPECT_EQ(rs.num_rows(), 3u);
}

TEST_F(EngineBasicTest, FilterWithAndOr) {
  ResultSet rs = Query(
      "select name from customer where balance > 10000 and name = 'John'");
  EXPECT_EQ(rs.num_rows(), 2u);
  rs = Query(
      "select name from customer where name = 'Mary' or name = 'Marion'");
  EXPECT_EQ(rs.num_rows(), 2u);
}

TEST_F(EngineBasicTest, InListDesugaring) {
  ResultSet rs =
      Query("select name from customer where name in ('Mary', 'Marion')");
  EXPECT_EQ(rs.num_rows(), 2u);
}

TEST_F(EngineBasicTest, BetweenDesugaring) {
  ResultSet rs = Query(
      "select name from customer where balance between 20000 and 30000");
  EXPECT_EQ(rs.num_rows(), 3u);
}

TEST_F(EngineBasicTest, LikePredicate) {
  ResultSet rs = Query("select name from customer where name like 'Mar%'");
  EXPECT_EQ(rs.num_rows(), 2u);
  rs = Query("select name from customer where name like '%ohn'");
  EXPECT_EQ(rs.num_rows(), 2u);
  rs = Query("select name from customer where name like 'M_ry'");
  EXPECT_EQ(rs.num_rows(), 1u);
}

TEST_F(EngineBasicTest, JoinTwoTables) {
  ResultSet rs = Query(
      "select o.id, c.id from orders o, customer c "
      "where o.cidfk = c.id and c.balance > 10000");
  // (o1,c1)x2 joins, (o2,c1)x2, (o2,c2)x1 -> 5 rows.
  EXPECT_EQ(rs.num_rows(), 5u);
}

TEST_F(EngineBasicTest, JoinWithGroupBySum) {
  ResultSet rs = Query(
      "select o.id, c.id, sum(o.prob * c.prob) from orders o, customer c "
      "where o.cidfk = c.id and c.balance > 10000 group by o.id, c.id");
  ASSERT_EQ(rs.num_rows(), 3u);
  // Probe expected probabilities from the paper's Example 6.
  double p_o1c1 = -1, p_o2c1 = -1, p_o2c2 = -1;
  for (const Row& r : rs.rows) {
    std::string key = r[0].string_value() + r[1].string_value();
    if (key == "o1c1") p_o1c1 = r[2].double_value();
    if (key == "o2c1") p_o2c1 = r[2].double_value();
    if (key == "o2c2") p_o2c2 = r[2].double_value();
  }
  EXPECT_NEAR(p_o1c1, 1.0, 1e-9);
  EXPECT_NEAR(p_o2c1, 0.5, 1e-9);
  EXPECT_NEAR(p_o2c2, 0.1, 1e-9);
}

TEST_F(EngineBasicTest, OrderByDesc) {
  ResultSet rs =
      Query("select name, balance from customer order by balance desc");
  ASSERT_EQ(rs.num_rows(), 4u);
  EXPECT_EQ(rs.rows[0][1].int_value(), 30000);
  EXPECT_EQ(rs.rows[3][1].int_value(), 5000);
}

TEST_F(EngineBasicTest, OrderByAlias) {
  ResultSet rs = Query(
      "select name, balance * 2 as doubled from customer order by doubled");
  ASSERT_EQ(rs.num_rows(), 4u);
  EXPECT_EQ(rs.rows[0][1].int_value(), 10000);
}

TEST_F(EngineBasicTest, OrderByHiddenColumn) {
  ResultSet rs = Query("select name from customer order by balance desc");
  ASSERT_EQ(rs.num_rows(), 4u);
  EXPECT_EQ(rs.num_columns(), 1u);  // hidden sort column stripped
  EXPECT_EQ(rs.rows[0][0].string_value(), "John");
  EXPECT_EQ(rs.rows[3][0].string_value(), "Marion");
}

TEST_F(EngineBasicTest, Distinct) {
  ResultSet rs = Query("select distinct name from customer");
  EXPECT_EQ(rs.num_rows(), 3u);
}

TEST_F(EngineBasicTest, Limit) {
  ResultSet rs = Query("select name from customer order by balance limit 2");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.rows[0][0].string_value(), "Marion");
}

TEST_F(EngineBasicTest, AggregatesWithoutGroupBy) {
  ResultSet rs = Query(
      "select count(*), sum(balance), min(balance), max(balance), "
      "avg(balance) from customer");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.rows[0][0].int_value(), 4);
  EXPECT_EQ(rs.rows[0][1].int_value(), 82000);
  EXPECT_EQ(rs.rows[0][2].int_value(), 5000);
  EXPECT_EQ(rs.rows[0][3].int_value(), 30000);
  EXPECT_NEAR(rs.rows[0][4].double_value(), 20500.0, 1e-9);
}

TEST_F(EngineBasicTest, AggregateOnEmptyInput) {
  ResultSet rs = Query(
      "select count(*), sum(balance) from customer where balance > 99999999");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.rows[0][0].int_value(), 0);
  EXPECT_TRUE(rs.rows[0][1].is_null());
}

TEST_F(EngineBasicTest, GroupByOnEmptyInputYieldsNoRows) {
  ResultSet rs = Query(
      "select name, count(*) from customer where balance > 99999999 "
      "group by name");
  EXPECT_EQ(rs.num_rows(), 0u);
}

TEST_F(EngineBasicTest, ArithmeticExpressions) {
  ResultSet rs = Query(
      "select balance * (1 + 1), balance / 2, balance - 1000 "
      "from customer where id = 'c2' and name = 'Mary'");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.rows[0][0].int_value(), 54000);
  EXPECT_NEAR(rs.rows[0][1].double_value(), 13500.0, 1e-9);
  EXPECT_EQ(rs.rows[0][2].int_value(), 26000);
}

TEST_F(EngineBasicTest, IndexScanEquivalentToSeqScan) {
  ASSERT_TRUE(db_.CreateIndex("customer", "id").ok());
  ResultSet rs = Query("select name from customer where id = 'c1'");
  EXPECT_EQ(rs.num_rows(), 2u);
  // Explain should mention the index scan.
  auto plan = db_.Explain("select name from customer where id = 'c1'");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("IndexScan"), std::string::npos) << *plan;
}

TEST_F(EngineBasicTest, ThreeWayJoin) {
  TableSchema card("card", {{"cardid", DataType::kInt64},
                            {"custfk", DataType::kString}});
  ASSERT_TRUE(db_.CreateTable(card).ok());
  Insert("card", {Value::Int(111), Value::String("c1")});
  Insert("card", {Value::Int(222), Value::String("c2")});
  ResultSet rs = Query(
      "select k.cardid, o.id, c.name from card k, customer c, orders o "
      "where k.custfk = c.id and o.cidfk = c.id and o.quantity < 5");
  // orders with quantity<5: (o1,c1),(o2,c1); each joins 2 customer dups and
  // 1 card -> 4 rows.
  EXPECT_EQ(rs.num_rows(), 4u);
}

TEST_F(EngineBasicTest, ErrorUnknownTable) {
  auto rs = db_.Query("select * from nosuch");
  EXPECT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kNotFound);
}

TEST_F(EngineBasicTest, ErrorUnknownColumn) {
  auto rs = db_.Query("select nosuch from customer");
  EXPECT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kNotFound);
}

TEST_F(EngineBasicTest, ErrorAmbiguousColumn) {
  auto rs = db_.Query(
      "select id from customer c, orders o where c.id = o.cidfk");
  EXPECT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EngineBasicTest, ErrorUngroupedColumn) {
  auto rs = db_.Query("select name, sum(balance) from customer");
  EXPECT_FALSE(rs.ok());
}

TEST_F(EngineBasicTest, ErrorTypeMismatch) {
  auto rs = db_.Query("select * from customer where name > 5");
  EXPECT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kTypeError);
}

TEST_F(EngineBasicTest, DateLiteralsAndComparison) {
  TableSchema t("events", {{"d", DataType::kDate}});
  ASSERT_TRUE(db_.CreateTable(t).ok());
  auto d1 = ParseDate("1995-03-10");
  auto d2 = ParseDate("1995-03-20");
  ASSERT_TRUE(d1.ok() && d2.ok());
  Insert("events", {Value::Date(*d1)});
  Insert("events", {Value::Date(*d2)});
  ResultSet rs = Query("select d from events where d < date '1995-03-15'");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.rows[0][0].ToString(), "1995-03-10");
}

TEST_F(EngineBasicTest, CrossProductWhenNoJoinEdge) {
  ResultSet rs = Query("select c.id, o.id from customer c, orders o");
  EXPECT_EQ(rs.num_rows(), 12u);
}

TEST_F(EngineBasicTest, NullHandlingInPredicates) {
  TableSchema t("nt", {{"a", DataType::kInt64}});
  ASSERT_TRUE(db_.CreateTable(t).ok());
  Insert("nt", {Value::Int(1)});
  Insert("nt", {Value::Null()});
  // NULL comparisons exclude the row.
  EXPECT_EQ(Query("select a from nt where a = 1").num_rows(), 1u);
  EXPECT_EQ(Query("select a from nt where a <> 1").num_rows(), 0u);
  EXPECT_EQ(Query("select a from nt where a is null").num_rows(), 1u);
  EXPECT_EQ(Query("select a from nt where a is not null").num_rows(), 1u);
  // NOT(NULL) is NULL -> excluded.
  EXPECT_EQ(Query("select a from nt where not (a = 1)").num_rows(), 0u);
}

}  // namespace
}  // namespace conquer
