// Multi-session stress tests: N client threads over one QueryService /
// Database, mixed ad-hoc and prepared statements, answers checked
// bit-identically against a single-threaded oracle. Runs in the tier-1
// suite and, via the `concurrency` label, under TSan.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "engine/service.h"
#include "types/value.h"

namespace conquer {
namespace {

constexpr int kClients = 8;
constexpr int kItersPerClient = 24;

/// Exact (bit-level for doubles, modulo NaN) result equality. The engine's
/// execution is deterministic — partial aggregates combine in slot order
/// regardless of thread timing — so concurrent clients must see answers
/// identical to the single-threaded oracle, including SUM(prob) doubles.
bool SameResults(const ResultSet& a, const ResultSet& b) {
  if (a.rows.size() != b.rows.size()) return false;
  for (size_t r = 0; r < a.rows.size(); ++r) {
    if (a.rows[r].size() != b.rows[r].size()) return false;
    for (size_t c = 0; c < a.rows[r].size(); ++c) {
      if (a.rows[r][c].TotalCompare(b.rows[r][c]) != 0) return false;
    }
  }
  return true;
}

class ServiceStressTest : public ::testing::Test {
 protected:
  /// Seeds `db` with the shared fact table (deterministic, so a second
  /// Database built here is bit-identical to the fixture's).
  static void PopulateFact(Database* db) {
    TableSchema fact("fact", {{"g", DataType::kInt64},
                              {"name", DataType::kString},
                              {"val", DataType::kDouble},
                              {"prob", DataType::kDouble}});
    ASSERT_TRUE(db->CreateTable(fact).ok());
    Rng rng(42);
    std::vector<Row> rows;
    rows.reserve(2000);
    for (int i = 0; i < 2000; ++i) {
      rows.push_back({Value::Int(static_cast<int64_t>(rng.Next() % 16)),
                      Value::String("n" + std::to_string(rng.Next() % 32)),
                      Value::Double(rng.NextDouble()),
                      Value::Double(rng.NextDouble())});
    }
    ASSERT_TRUE(db->InsertMany("fact", std::move(rows)).ok());
    ASSERT_TRUE(db->Analyze("fact").ok());
  }

  void SetUp() override {
    PopulateFact(&db_);
    // All stress queries ORDER BY, so row order is part of the contract.
    queries_ = {
        "select g, sum(prob) from fact group by g order by g",
        "select g, sum(prob), count(*) from fact where val > 0.25 "
        "group by g order by g",
        "select name, sum(prob) from fact where g < 8 "
        "group by name order by name",
        "select g, min(val), max(val) from fact where prob > 0.5 "
        "group by g order by g",
        "select count(*) from fact where name = 'n7'",
        "select g, val, prob from fact where val > 0.97 order by val, g",
    };
  }

  /// Single-threaded reference answers, computed through the same service
  /// path the clients use (and priming the plan cache on the way).
  std::vector<ResultSet> Oracle(QueryService* service) {
    std::vector<ResultSet> oracle;
    for (const std::string& q : queries_) {
      auto rs = service->ExecuteSql(q);
      EXPECT_TRUE(rs.ok()) << rs.status().ToString() << " for: " << q;
      oracle.push_back(rs.ok() ? std::move(rs).value() : ResultSet{});
    }
    return oracle;
  }

  /// The parameterized variant of the mixed workload: queries_[1] with the
  /// val threshold as a placeholder (bound to 0.25 to match the oracle).
  static constexpr const char* kPreparedSql =
      "select g, sum(prob), count(*) from fact where val > ? "
      "group by g order by g";

  Database db_;
  std::vector<std::string> queries_;
};

TEST_F(ServiceStressTest, MixedWorkloadMatchesOracleBitIdentically) {
  db_.SetThreads(3);  // shared morsel pool under all clients
  db_.mutable_exec_context()->morsel_size = 128;  // force parallel splits
  ServiceOptions options;
  options.max_concurrent_queries = 4;
  QueryService service(&db_, options);

  const std::vector<ResultSet> oracle = Oracle(&service);
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int tid = 0; tid < kClients; ++tid) {
    clients.emplace_back([&, tid] {
      auto session = service.CreateSession("client-" + std::to_string(tid));
      if (!session->Prepare("mix", kPreparedSql).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kItersPerClient; ++i) {
        const size_t q = (tid + i) % queries_.size();
        Result<ResultSet> rs = (i % 3 == 2)
                                   ? session->ExecutePrepared(
                                         "mix", {Value::Double(0.25)})
                                   : session->Execute(queries_[q]);
        if (!rs.ok()) {
          failures.fetch_add(1);
          continue;
        }
        const ResultSet& expect = (i % 3 == 2) ? oracle[1] : oracle[q];
        if (!SameResults(*rs, expect)) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.query_errors, 0u);
  EXPECT_LE(stats.admission.peak_active, 4u);
  // Every distinct statement missed once (plus possibly a duplicated
  // insert race); everything else must hit.
  EXPECT_GT(stats.plan_cache.hit_rate(), 0.9)
      << "hits=" << stats.plan_cache.hits
      << " misses=" << stats.plan_cache.misses;
  db_.SetThreads(1);
}

TEST_F(ServiceStressTest, DdlAndAnalyzeInterleavedWithQueries) {
  db_.SetThreads(2);
  ServiceOptions options;
  options.max_concurrent_queries = 4;
  QueryService service(&db_, options);
  const std::vector<ResultSet> oracle = Oracle(&service);

  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::vector<std::thread> clients;
  for (int tid = 0; tid < 4; ++tid) {
    clients.emplace_back([&, tid] {
      auto session = service.CreateSession();
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t q = (tid + i++) % queries_.size();
        auto rs = session->Execute(queries_[q]);
        if (!rs.ok() || !SameResults(*rs, oracle[q])) bad.fetch_add(1);
      }
    });
  }
  // DDL churn while clients query: epoch bumps force invalidation and
  // re-binds, but never wrong answers or crashes.
  for (int i = 0; i < 8; ++i) {
    TableSchema scratch("scratch" + std::to_string(i),
                        {{"x", DataType::kInt64}});
    ASSERT_TRUE(service.CreateTable(scratch).ok());
    ASSERT_TRUE(service.Analyze("fact").ok());
    ASSERT_TRUE(service.DropTable(scratch.table_name()).ok());
  }
  stop.store(true);
  for (auto& t : clients) t.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(service.stats().query_errors, 0u);
  db_.SetThreads(1);
}

// Regression for the SetThreads race: resizing the pool while queries are
// in flight used to swap the TaskPool out from under their ExecContext.
// Now the swap defers until in-flight queries drain (and, through the
// service, runs under exclusive admission).
TEST_F(ServiceStressTest, SetThreadsUnderLoadIsSafe) {
  db_.SetThreads(2);
  db_.mutable_exec_context()->morsel_size = 128;
  ServiceOptions options;
  options.max_concurrent_queries = 4;
  QueryService service(&db_, options);
  const std::vector<ResultSet> oracle = Oracle(&service);

  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::vector<std::thread> clients;
  for (int tid = 0; tid < 4; ++tid) {
    clients.emplace_back([&, tid] {
      auto session = service.CreateSession();
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t q = (tid + i++) % queries_.size();
        auto rs = session->Execute(queries_[q]);
        if (!rs.ok() || !SameResults(*rs, oracle[q])) bad.fetch_add(1);
      }
    });
  }
  for (int round = 0; round < 12; ++round) {
    service.SetThreads(1 + round % 3);
  }
  stop.store(true);
  for (auto& t : clients) t.join();
  EXPECT_EQ(bad.load(), 0);
  db_.SetThreads(1);
}

// A writer session mutating the table while kClients readers hammer it
// with a snapshot probe. Writes run serialized behind exclusive admission,
// so every concurrent read must observe the database state after some
// prefix of the write script — never a torn intermediate — and the final
// table contents must match a single-threaded replay of the same script.
TEST_F(ServiceStressTest, WriterUnderQueryLoadMatchesSerializedReplay) {
  // The write script targets a dedicated g = 999 stripe: 24 inserts with a
  // delete after every fourth, so cardinality moves both ways.
  std::vector<std::string> script;
  for (int i = 0; i < 24; ++i) {
    script.push_back("insert into fact values (999, 'w" + std::to_string(i) +
                     "', " + std::to_string(i) + ".125, 0.5)");
    if (i % 4 == 3) {
      script.push_back("delete from fact where g = 999 and name = 'w" +
                       std::to_string(i - 2) + "'");
    }
  }
  const std::string probe =
      "select count(*), sum(val) from fact where g = 999";
  const std::string stripe =
      "select g, name, val, prob from fact where g = 999 "
      "order by name, val, prob";

  // Serial oracle: replay the script on an identical database, recording
  // the probe answer after every prefix (including the empty one).
  Database oracle_db;
  PopulateFact(&oracle_db);
  std::vector<ResultSet> states;
  {
    auto rs = oracle_db.Query(probe);
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    states.push_back(std::move(rs).value());
  }
  for (const std::string& w : script) {
    ASSERT_TRUE(oracle_db.ExecuteWrite(w).ok()) << w;
    auto rs = oracle_db.Query(probe);
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    states.push_back(std::move(rs).value());
  }

  db_.SetThreads(3);
  db_.mutable_exec_context()->morsel_size = 128;
  ServiceOptions options;
  options.max_concurrent_queries = 4;
  QueryService service(&db_, options);

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::atomic<int> torn_reads{0};
  std::vector<std::thread> readers;
  for (int tid = 0; tid < kClients; ++tid) {
    readers.emplace_back([&] {
      auto session = service.CreateSession();
      while (!done.load(std::memory_order_relaxed)) {
        auto rs = session->Execute(probe);
        if (!rs.ok()) {
          failures.fetch_add(1);
          continue;
        }
        bool matched = false;
        for (const ResultSet& s : states) {
          if (SameResults(*rs, s)) {
            matched = true;
            break;
          }
        }
        if (!matched) torn_reads.fetch_add(1);
      }
    });
  }
  {
    auto writer = service.CreateSession("writer");
    for (const std::string& w : script) {
      auto rs = writer->Execute(w);  // service routes writes exclusively
      if (!rs.ok()) failures.fetch_add(1);
    }
  }
  done.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(torn_reads.load(), 0);
  EXPECT_EQ(service.stats().query_errors, 0u);

  // Final state: the concurrent run left exactly the serial replay's rows.
  auto got = service.ExecuteSql(stripe);
  auto want = oracle_db.Query(stripe);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  EXPECT_TRUE(SameResults(*got, *want));
  auto final_probe = service.ExecuteSql(probe);
  ASSERT_TRUE(final_probe.ok());
  EXPECT_TRUE(SameResults(*final_probe, states.back()));
  db_.SetThreads(1);
}

// The same race at the Database layer, without the service's exclusive
// admission in front: concurrent Query + SetThreads on the raw Database
// must also be safe, because SetThreads waits for the in-flight count.
TEST_F(ServiceStressTest, DatabaseSetThreadsConcurrentWithQueries) {
  db_.mutable_exec_context()->morsel_size = 128;
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::vector<std::thread> clients;
  for (int tid = 0; tid < 3; ++tid) {
    clients.emplace_back([&, tid] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t q = (tid + i++) % queries_.size();
        if (!db_.Query(queries_[q]).ok()) bad.fetch_add(1);
      }
    });
  }
  for (int round = 0; round < 10; ++round) {
    db_.SetThreads(1 + round % 4);
  }
  stop.store(true);
  for (auto& t : clients) t.join();
  EXPECT_EQ(bad.load(), 0);
  db_.SetThreads(1);
}

}  // namespace
}  // namespace conquer
