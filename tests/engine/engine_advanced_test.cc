// Advanced engine tests: self-joins, plan-independence of results,
// multi-way joins under different physical choices, and stress cases.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/database.h"

namespace conquer {
namespace {

class EngineAdvancedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable(TableSchema("edge", {{"src", DataType::kInt64},
                                                     {"dst", DataType::kInt64}}))
                    .ok());
    // A small directed graph: 0->1->2->3->0 plus chords.
    int edges[][2] = {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}, {1, 3}};
    for (auto& e : edges) {
      ASSERT_TRUE(db_.Insert("edge", {Value::Int(e[0]), Value::Int(e[1])})
                      .ok());
    }
  }
  Database db_;
};

TEST_F(EngineAdvancedTest, SelfJoinFindsTwoHopPaths) {
  auto rs = db_.Query(
      "select a.src, b.dst from edge a, edge b where a.dst = b.src");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  // Two-hop paths by hand: 0->1->{2,3}, 1->2->3, 2->3->0, 3->0->{1,2},
  // 0->2->3, 1->3->0 = 8.
  EXPECT_EQ(rs->num_rows(), 8u);
}

TEST_F(EngineAdvancedTest, TripleSelfJoin) {
  auto rs = db_.Query(
      "select a.src from edge a, edge b, edge c "
      "where a.dst = b.src and b.dst = c.src and c.dst = a.src");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  // Directed triangles: 0->1->3->0 and 0->2->3->0, each counted once per
  // rotation of the starting edge.
  EXPECT_EQ(rs->num_rows(), 6u);  // 2 triangles x 3 rotations
}

// LIKE on non-string columns must be rejected at bind time with a type
// error, never reach the evaluator.
TEST_F(EngineAdvancedTest, LikeOnNonStringColumnsIsTypeError) {
  auto rs = db_.Query("select src from edge where src like '1%'");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kTypeError);

  rs = db_.Query("select src from edge where src like dst");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kTypeError);
}

class PlanEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(404);
    ASSERT_TRUE(db_.CreateTable(TableSchema("r", {{"k", DataType::kInt64},
                                                  {"a", DataType::kInt64}}))
                    .ok());
    ASSERT_TRUE(db_.CreateTable(TableSchema("s", {{"k", DataType::kInt64},
                                                  {"b", DataType::kInt64}}))
                    .ok());
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(db_.Insert("r", {Value::Int(rng.Uniform(0, 30)),
                                   Value::Int(rng.Uniform(0, 9))})
                      .ok());
      ASSERT_TRUE(db_.Insert("s", {Value::Int(rng.Uniform(0, 30)),
                                   Value::Int(rng.Uniform(0, 9))})
                      .ok());
    }
  }
  Database db_;
};

// Same query, three physical configurations (no metadata, stats only,
// stats + indexes) must return identical result multisets.
TEST_F(PlanEquivalenceTest, ResultsIndependentOfPhysicalChoices) {
  const char* sql =
      "select r.k, r.a, s.b from r, s "
      "where r.k = s.k and r.a > 2 and s.b < 8 order by r.k, r.a, s.b";
  auto baseline = db_.Query(sql);
  ASSERT_TRUE(baseline.ok());

  ASSERT_TRUE(db_.AnalyzeAll().ok());
  auto with_stats = db_.Query(sql);
  ASSERT_TRUE(with_stats.ok());

  ASSERT_TRUE(db_.CreateIndex("r", "k").ok());
  ASSERT_TRUE(db_.CreateIndex("s", "k").ok());
  auto with_indexes = db_.Query(sql);
  ASSERT_TRUE(with_indexes.ok());

  ASSERT_EQ(baseline->num_rows(), with_stats->num_rows());
  ASSERT_EQ(baseline->num_rows(), with_indexes->num_rows());
  for (size_t i = 0; i < baseline->num_rows(); ++i) {
    for (size_t c = 0; c < baseline->num_columns(); ++c) {
      ASSERT_EQ(baseline->rows[i][c].TotalCompare(with_stats->rows[i][c]), 0);
      ASSERT_EQ(baseline->rows[i][c].TotalCompare(with_indexes->rows[i][c]),
                0);
    }
  }
}

// The ORDER BY total output is stable: ties keep input order.
TEST_F(PlanEquivalenceTest, SortIsDeterministic) {
  const char* sql = "select r.a from r order by r.a";
  auto rs1 = db_.Query(sql);
  auto rs2 = db_.Query(sql);
  ASSERT_TRUE(rs1.ok() && rs2.ok());
  ASSERT_EQ(rs1->num_rows(), rs2->num_rows());
  for (size_t i = 1; i < rs1->num_rows(); ++i) {
    ASSERT_LE(rs1->rows[i - 1][0].int_value(), rs1->rows[i][0].int_value());
  }
}

TEST_F(PlanEquivalenceTest, WideJoinStress) {
  // 200 x 200 rows with ~6.5 matches per key: the join result is big but
  // bounded; verify the count against a nested-loop recomputation.
  auto rs = db_.Query("select r.k from r, s where r.k = s.k");
  ASSERT_TRUE(rs.ok());
  auto r = db_.GetTable("r");
  auto s = db_.GetTable("s");
  ASSERT_TRUE(r.ok() && s.ok());
  size_t expected = 0;
  for (const Row& a : (*r)->rows()) {
    for (const Row& b : (*s)->rows()) {
      if (a[0].int_value() == b[0].int_value()) ++expected;
    }
  }
  EXPECT_EQ(rs->num_rows(), expected);
}

TEST_F(PlanEquivalenceTest, GroupByMatchesManualAggregation) {
  auto rs = db_.Query(
      "select a, count(*), sum(k), min(k), max(k) from r group by a "
      "order by a");
  ASSERT_TRUE(rs.ok());
  auto r = db_.GetTable("r");
  ASSERT_TRUE(r.ok());
  std::map<int64_t, std::tuple<int64_t, int64_t, int64_t, int64_t>> manual;
  for (const Row& row : (*r)->rows()) {
    auto& [count, sum, mn, mx] = manual.try_emplace(
        row[1].int_value(), 0, 0, INT64_MAX, INT64_MIN).first->second;
    ++count;
    sum += row[0].int_value();
    mn = std::min(mn, row[0].int_value());
    mx = std::max(mx, row[0].int_value());
  }
  ASSERT_EQ(rs->num_rows(), manual.size());
  size_t i = 0;
  for (const auto& [a, agg] : manual) {
    EXPECT_EQ(rs->rows[i][0].int_value(), a);
    EXPECT_EQ(rs->rows[i][1].int_value(), std::get<0>(agg));
    EXPECT_EQ(rs->rows[i][2].int_value(), std::get<1>(agg));
    EXPECT_EQ(rs->rows[i][3].int_value(), std::get<2>(agg));
    EXPECT_EQ(rs->rows[i][4].int_value(), std::get<3>(agg));
    ++i;
  }
}

// Randomized parser robustness: arbitrary garbled inputs must error out
// cleanly, never crash.
class ParserRobustnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserRobustnessTest, GarbledInputFailsGracefully) {
  Rng rng(GetParam());
  const char* fragments[] = {"select", "from",  "where", "group by",
                             "order by", "and", "or",    "not",
                             "t",      "a",     "b",     "*",
                             ",",      "(",     ")",     "=",
                             "<",      "'x'",   "1",     "2.5",
                             "sum",    "count", "like",  "between",
                             "in",     "null",  "date",  "limit"};
  Database db;
  (void)db.CreateTable(TableSchema("t", {{"a", DataType::kInt64},
                                         {"b", DataType::kString}}));
  for (int trial = 0; trial < 50; ++trial) {
    std::string sql;
    int len = static_cast<int>(rng.Uniform(1, 15));
    for (int i = 0; i < len; ++i) {
      sql += fragments[rng.Uniform(0, 27)];
      sql += ' ';
    }
    auto rs = db.Query(sql);  // must not crash; errors are fine
    if (rs.ok()) {
      EXPECT_GE(rs->num_columns(), 0u);  // touch the result
    } else {
      EXPECT_FALSE(rs.status().message().empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustnessTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace conquer
