// Unit tests for the serving layer: QueryService, Session, plan cache,
// prepared statements and the admission gate.

#include "engine/service.h"

#include <gtest/gtest.h>

#include "engine/plan_cache.h"
#include "types/value.h"

namespace conquer {
namespace {

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableSchema t("t", {{"id", DataType::kInt64},
                        {"name", DataType::kString},
                        {"amount", DataType::kDouble},
                        {"d", DataType::kDate}});
    ASSERT_TRUE(db_.CreateTable(t).ok());
    auto days = ParseDate("2024-06-01");
    ASSERT_TRUE(days.ok());
    const Value date = Value::Date(*days);
    ASSERT_TRUE(db_.InsertMany(
                       "t",
                       {
                           {Value::Int(1), Value::String("a"),
                            Value::Double(1.5), date},
                           {Value::Int(2), Value::String("b"),
                            Value::Double(2.5), date},
                           {Value::Int(3), Value::String("b"),
                            Value::Double(3.5), date},
                       })
                    .ok());
  }

  Database db_;
};

TEST_F(ServiceTest, RepeatedQueryHitsPlanCache) {
  QueryService service(&db_);
  ExecInfo info;
  auto rs1 = service.ExecuteSql("select id from t where name = 'b'", nullptr,
                                &info);
  ASSERT_TRUE(rs1.ok()) << rs1.status().ToString();
  EXPECT_FALSE(info.cache_hit);
  EXPECT_EQ(rs1->rows.size(), 2u);

  info = ExecInfo{};
  // Different whitespace and keyword case: same normalized key.
  auto rs2 = service.ExecuteSql("SELECT id  FROM t WHERE name='b'", nullptr,
                                &info);
  ASSERT_TRUE(rs2.ok());
  EXPECT_TRUE(info.cache_hit);
  EXPECT_EQ(rs2->rows.size(), 2u);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.plan_cache.hits, 1u);
  EXPECT_EQ(stats.plan_cache.misses, 1u);
  EXPECT_EQ(stats.queries_executed, 2u);
  EXPECT_EQ(stats.query_errors, 0u);
}

TEST_F(ServiceTest, DdlInvalidatesCachedPlans) {
  QueryService service(&db_);
  ExecInfo info;
  ASSERT_TRUE(service.ExecuteSql("select id from t", nullptr, &info).ok());
  EXPECT_FALSE(info.cache_hit);

  TableSchema u("u", {{"x", DataType::kInt64}});
  ASSERT_TRUE(service.CreateTable(u).ok());

  info = ExecInfo{};
  ASSERT_TRUE(service.ExecuteSql("select id from t", nullptr, &info).ok());
  EXPECT_FALSE(info.cache_hit) << "epoch bump must invalidate the entry";
  EXPECT_EQ(service.stats().plan_cache.invalidated, 1u);

  // Stable catalog again: back to hitting.
  info = ExecInfo{};
  ASSERT_TRUE(service.ExecuteSql("select id from t", nullptr, &info).ok());
  EXPECT_TRUE(info.cache_hit);
}

TEST_F(ServiceTest, AnalyzeInvalidatesCachedPlans) {
  QueryService service(&db_);
  ASSERT_TRUE(service.ExecuteSql("select id from t").ok());
  ASSERT_TRUE(service.Analyze("t").ok());
  ExecInfo info;
  ASSERT_TRUE(service.ExecuteSql("select id from t", nullptr, &info).ok());
  EXPECT_FALSE(info.cache_hit);
}

TEST_F(ServiceTest, CreateIndexInvalidatesCachedPlans) {
  QueryService service(&db_);
  ExecInfo info;
  ASSERT_TRUE(
      service.ExecuteSql("select id from t where id = 2", nullptr, &info)
          .ok());
  EXPECT_FALSE(info.cache_hit);
  info = ExecInfo{};
  ASSERT_TRUE(
      service.ExecuteSql("select id from t where id = 2", nullptr, &info)
          .ok());
  EXPECT_TRUE(info.cache_hit);

  ASSERT_TRUE(service.CreateIndex("t", "id").ok());

  // A new index changes the chosen access path; serving the stale cached
  // entry would silently keep the pre-index plan.
  info = ExecInfo{};
  auto rs = service.ExecuteSql("select id from t where id = 2", nullptr,
                               &info);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_FALSE(info.cache_hit) << "CREATE INDEX must bump the catalog epoch";
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].int_value(), 2);

  // And the replanned query must actually take the index.
  auto plan = db_.Explain("select id from t where id = 2");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("IndexScan"), std::string::npos) << *plan;
}

TEST_F(ServiceTest, ExplainBypassesTheCache) {
  QueryService service(&db_);
  auto rs = service.ExecuteSql("explain select id from t");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_FALSE(rs->rows.empty());
  EXPECT_EQ(service.stats().plan_cache.misses, 0u);
  EXPECT_EQ(service.stats().plan_cache.entries, 0u);
}

TEST_F(ServiceTest, WritesRouteExclusivelyRegardlessOfCase) {
  QueryService service(&db_);
  // The write words are soft keywords now, so normalization keeps their
  // original spelling; routing must detect the write prefix
  // case-insensitively or lowercase writes would be misrouted to the
  // shared read path (which rejects them).
  auto ins = service.ExecuteSql("insert into t values (4, 'c', 4.5, null)");
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  EXPECT_EQ(ins->rows[0][0].int_value(), 1);
  auto upd = service.ExecuteSql("UpDaTe t set name = 'z' where id = 4");
  ASSERT_TRUE(upd.ok()) << upd.status().ToString();
  auto rs = service.ExecuteSql("select count(*) from t where name = 'z'");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows[0][0].int_value(), 1);
  // Writes still cannot be prepared, whatever their case.
  auto session = service.CreateSession();
  EXPECT_FALSE(session->Prepare("w", "delete from t where id = 4").ok());
}

TEST_F(ServiceTest, ErrorsAreCountedAndReported) {
  QueryService service(&db_);
  EXPECT_FALSE(service.ExecuteSql("select nope from t").ok());
  EXPECT_FALSE(service.ExecuteSql("not even sql #").ok());
  EXPECT_EQ(service.stats().query_errors, 2u);
}

TEST_F(ServiceTest, PreparedStatementBindsParams) {
  QueryService service(&db_);
  auto session = service.CreateSession();
  ASSERT_TRUE(
      session->Prepare("q", "select id from t where amount > ? and name = ?")
          .ok());
  EXPECT_EQ(session->GetPrepared("q")->num_params, 2);

  auto rs = session->ExecutePrepared(
      "q", {Value::Double(2.0), Value::String("b")});
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows.size(), 2u);

  // Same template, different values; second execution hits the cache.
  ExecInfo info;
  rs = session->ExecutePrepared("q", {Value::Double(3.0), Value::String("b")},
                                nullptr, &info);
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(info.cache_hit);
  EXPECT_EQ(rs->rows.size(), 1u);
}

TEST_F(ServiceTest, ParamCoercions) {
  QueryService service(&db_);
  auto session = service.CreateSession();
  // Int widens to the double the binder inferred.
  ASSERT_TRUE(session->Prepare("wide", "select id from t where amount > ?")
                  .ok());
  auto rs = session->ExecutePrepared("wide", {Value::Int(2)});
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows.size(), 2u);

  // A string binds to a DATE parameter by parsing.
  ASSERT_TRUE(session->Prepare("day", "select id from t where d = ?").ok());
  rs = session->ExecutePrepared("day", {Value::String("2024-06-01")});
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows.size(), 3u);

  // NULL binds anywhere (and matches nothing under SQL comparison).
  rs = session->ExecutePrepared("wide", {Value::Null()});
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows.size(), 0u);

  // Type mismatch is a TypeError, not a crash.
  EXPECT_FALSE(session->ExecutePrepared("wide", {Value::String("x")}).ok());
}

TEST_F(ServiceTest, PreparedStatementArityChecked) {
  QueryService service(&db_);
  auto session = service.CreateSession();
  ASSERT_TRUE(session->Prepare("q", "select id from t where id = ?").ok());
  EXPECT_FALSE(session->ExecutePrepared("q", {}).ok());
  EXPECT_FALSE(
      session->ExecutePrepared("q", {Value::Int(1), Value::Int(2)}).ok());
}

TEST_F(ServiceTest, BothSidesPlaceholderIsATypeError) {
  QueryService service(&db_);
  auto session = service.CreateSession();
  EXPECT_FALSE(session->Prepare("q", "select id from t where ? = ?").ok());
}

TEST_F(ServiceTest, PreparedSurvivesDdlViaReprepare) {
  QueryService service(&db_);
  auto session = service.CreateSession();
  ASSERT_TRUE(session->Prepare("q", "select id from t where id = ?").ok());
  ASSERT_TRUE(session->ExecutePrepared("q", {Value::Int(1)}).ok());

  // Invalidate the cached template, then execute again: the session
  // re-binds transparently from the stored text.
  ASSERT_TRUE(service.Analyze("t").ok());
  ExecInfo info;
  auto rs = session->ExecutePrepared("q", {Value::Int(2)}, nullptr, &info);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_FALSE(info.cache_hit);
  EXPECT_TRUE(info.reprepared);
  EXPECT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(service.stats().reprepares, 1u);
}

TEST_F(ServiceTest, SessionBookkeeping) {
  QueryService service(&db_);
  auto s1 = service.CreateSession("alice");
  auto s2 = service.CreateSession();
  EXPECT_NE(s1->id(), s2->id());
  EXPECT_EQ(s1->name(), "alice");

  ASSERT_TRUE(s1->Prepare("q", "select id from t").ok());
  EXPECT_EQ(s1->PreparedNames().size(), 1u);
  // Prepared statements are per-session state.
  EXPECT_EQ(s2->GetPrepared("q"), nullptr);
  EXPECT_FALSE(s2->ExecutePrepared("q", {}).ok());

  ASSERT_TRUE(s1->DeallocatePrepared("q").ok());
  EXPECT_FALSE(s1->DeallocatePrepared("q").ok());
  EXPECT_EQ(service.stats().sessions_created, 2u);
}

TEST_F(ServiceTest, UnboundParamsRejectedByDatabase) {
  auto rs = db_.Query("select id from t where id = ?");
  ASSERT_FALSE(rs.ok());
  EXPECT_NE(rs.status().ToString().find("prepare"), std::string::npos);
}

TEST_F(ServiceTest, CannotPrepareExplain) {
  QueryService service(&db_);
  auto session = service.CreateSession();
  EXPECT_FALSE(session->Prepare("q", "explain select id from t").ok());
}

TEST(PlanCacheTest, LruEvictionAndStats) {
  PlanCache cache(2);
  BoundQuery a, b, c;
  a.total_slots = 1;
  b.total_slots = 2;
  c.total_slots = 3;
  cache.Insert("a", 0, std::move(a));
  cache.Insert("b", 0, std::move(b));
  EXPECT_TRUE(cache.Lookup("a", 0).has_value());  // a is now MRU
  cache.Insert("c", 0, std::move(c));             // evicts b (LRU)
  EXPECT_FALSE(cache.Lookup("b", 0).has_value());
  ASSERT_TRUE(cache.Lookup("a", 0).has_value());
  EXPECT_EQ(cache.Lookup("c", 0)->total_slots, 3u);

  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evicted, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(PlanCacheTest, EpochMismatchInvalidates) {
  PlanCache cache(4);
  cache.Insert("k", 1, BoundQuery{});
  EXPECT_FALSE(cache.Lookup("k", 2).has_value());
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.invalidated, 1u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(PlanCacheTest, LookupReturnsAnIndependentClone) {
  PlanCache cache(4);
  BoundQuery master;
  master.stmt = std::make_unique<SelectStatement>();
  master.stmt->limit = 7;
  cache.Insert("k", 0, std::move(master));
  auto first = cache.Lookup("k", 0);
  ASSERT_TRUE(first.has_value());
  first->stmt->limit = 99;  // mutating the clone must not touch the master
  auto second = cache.Lookup("k", 0);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->stmt->limit, 7);
}

}  // namespace
}  // namespace conquer
