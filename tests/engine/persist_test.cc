// Tests of database save/load round-trips.

#include "engine/persist.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "core/clean_engine.h"
#include "tests/core/paper_fixtures.h"

namespace conquer {
namespace {

class PersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("conquer_persist_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(PersistTest, RoundTripsTablesAndDirtySchema) {
  Database db;
  DirtySchema dirty;
  LoadFigure2(&db, &dirty);

  ASSERT_TRUE(SaveDatabase(db, dir_.string(), &dirty).ok());
  DirtySchema dirty2;
  auto loaded = LoadDatabase(dir_.string(), &dirty2);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Same tables, same rows.
  for (const std::string& name : db.catalog().TableNames()) {
    auto orig = db.GetTable(name);
    auto copy = (*loaded)->GetTable(name);
    ASSERT_TRUE(orig.ok() && copy.ok()) << name;
    ASSERT_EQ((*orig)->num_rows(), (*copy)->num_rows()) << name;
    for (size_t r = 0; r < (*orig)->num_rows(); ++r) {
      for (size_t c = 0; c < (*orig)->schema().num_columns(); ++c) {
        ASSERT_EQ((*orig)->row(r)[c].TotalCompare((*copy)->row(r)[c]), 0)
            << name << " row " << r << " col " << c;
      }
    }
  }
  // Dirty annotations survive.
  const DirtyTableInfo* info = dirty2.Find("orders");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->id_column, "id");
  EXPECT_EQ(info->prob_column, "prob");
  ASSERT_EQ(info->foreign_ids.size(), 1u);
  EXPECT_EQ(info->foreign_ids[0].referenced_table, "customer");

  // Clean answers over the reloaded database match the original.
  CleanAnswerEngine before(&db, &dirty);
  CleanAnswerEngine after(loaded->get(), &dirty2);
  const char* q =
      "select o.id, c.id from orders o, customer c "
      "where o.cidfk = c.id and c.balance > 10000";
  auto a1 = before.Query(q);
  auto a2 = after.Query(q);
  ASSERT_TRUE(a1.ok() && a2.ok());
  ASSERT_EQ(a1->answers.size(), a2->answers.size());
  for (const CleanAnswer& a : a1->answers) {
    EXPECT_NEAR(a2->ProbabilityOf(a.row), a.probability, 1e-9);
  }
}

TEST_F(PersistTest, NullsSurviveRoundTrip) {
  Database db;
  ASSERT_TRUE(db.CreateTable(TableSchema("t", {{"a", DataType::kInt64},
                                               {"b", DataType::kString}}))
                  .ok());
  ASSERT_TRUE(db.Insert("t", {Value::Null(), Value::String("\\N")}).ok());
  ASSERT_TRUE(db.Insert("t", {Value::Int(1), Value::Null()}).ok());
  ASSERT_TRUE(SaveDatabase(db, dir_.string()).ok());
  auto loaded = LoadDatabase(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto t = (*loaded)->GetTable("t");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE((*t)->row(0)[0].is_null());
  EXPECT_TRUE((*t)->row(1)[1].is_null());
  EXPECT_EQ((*t)->row(1)[0].int_value(), 1);
  // Caveat of the plain-text format: a literal string equal to the NULL
  // spelling reads back as NULL.
  EXPECT_TRUE((*t)->row(0)[1].is_null());
}

TEST_F(PersistTest, DatesAndDoublesRoundTrip) {
  Database db;
  ASSERT_TRUE(db.CreateTable(TableSchema("t", {{"d", DataType::kDate},
                                               {"x", DataType::kDouble}}))
                  .ok());
  auto day = ParseDate("1995-03-15");
  ASSERT_TRUE(day.ok());
  ASSERT_TRUE(db.Insert("t", {Value::Date(*day), Value::Double(0.125)}).ok());
  ASSERT_TRUE(SaveDatabase(db, dir_.string()).ok());
  auto loaded = LoadDatabase(dir_.string());
  ASSERT_TRUE(loaded.ok());
  auto t = (*loaded)->GetTable("t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->row(0)[0].ToString(), "1995-03-15");
  EXPECT_DOUBLE_EQ((*t)->row(0)[1].double_value(), 0.125);
}

TEST_F(PersistTest, MissingDirectoryReportsNotFound) {
  auto loaded = LoadDatabase((dir_ / "nope").string());
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(PersistTest, SaveWithoutDirtySchemaOmitsFile) {
  Database db;
  ASSERT_TRUE(
      db.CreateTable(TableSchema("t", {{"a", DataType::kInt64}})).ok());
  ASSERT_TRUE(SaveDatabase(db, dir_.string()).ok());
  EXPECT_FALSE(std::filesystem::exists(dir_ / "dirty_schema.txt"));
  DirtySchema dirty;
  auto loaded = LoadDatabase(dir_.string(), &dirty);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(dirty.tables().empty());
}

}  // namespace
}  // namespace conquer
