// Tests of database save/load round-trips.

#include "engine/persist.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/clean_engine.h"
#include "tests/core/paper_fixtures.h"

namespace conquer {
namespace {

class PersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("conquer_persist_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(PersistTest, RoundTripsTablesAndDirtySchema) {
  Database db;
  DirtySchema dirty;
  LoadFigure2(&db, &dirty);

  ASSERT_TRUE(SaveDatabase(db, dir_.string(), &dirty).ok());
  DirtySchema dirty2;
  auto loaded = LoadDatabase(dir_.string(), &dirty2);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Same tables, same rows.
  for (const std::string& name : db.catalog().TableNames()) {
    auto orig = db.GetTable(name);
    auto copy = (*loaded)->GetTable(name);
    ASSERT_TRUE(orig.ok() && copy.ok()) << name;
    ASSERT_EQ((*orig)->num_rows(), (*copy)->num_rows()) << name;
    for (size_t r = 0; r < (*orig)->num_rows(); ++r) {
      for (size_t c = 0; c < (*orig)->schema().num_columns(); ++c) {
        ASSERT_EQ((*orig)->row(r)[c].TotalCompare((*copy)->row(r)[c]), 0)
            << name << " row " << r << " col " << c;
      }
    }
  }
  // Dirty annotations survive.
  const DirtyTableInfo* info = dirty2.Find("orders");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->id_column, "id");
  EXPECT_EQ(info->prob_column, "prob");
  ASSERT_EQ(info->foreign_ids.size(), 1u);
  EXPECT_EQ(info->foreign_ids[0].referenced_table, "customer");

  // Clean answers over the reloaded database match the original.
  CleanAnswerEngine before(&db, &dirty);
  CleanAnswerEngine after(loaded->get(), &dirty2);
  const char* q =
      "select o.id, c.id from orders o, customer c "
      "where o.cidfk = c.id and c.balance > 10000";
  auto a1 = before.Query(q);
  auto a2 = after.Query(q);
  ASSERT_TRUE(a1.ok() && a2.ok());
  ASSERT_EQ(a1->answers.size(), a2->answers.size());
  for (const CleanAnswer& a : a1->answers) {
    EXPECT_NEAR(a2->ProbabilityOf(a.row), a.probability, 1e-9);
  }
}

TEST_F(PersistTest, NullsSurviveRoundTrip) {
  Database db;
  ASSERT_TRUE(db.CreateTable(TableSchema("t", {{"a", DataType::kInt64},
                                               {"b", DataType::kString}}))
                  .ok());
  ASSERT_TRUE(db.Insert("t", {Value::Null(), Value::String("\\N")}).ok());
  ASSERT_TRUE(db.Insert("t", {Value::Int(1), Value::Null()}).ok());
  ASSERT_TRUE(db.Insert("t", {Value::Int(2), Value::String("")}).ok());
  ASSERT_TRUE(SaveDatabase(db, dir_.string()).ok());
  auto loaded = LoadDatabase(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto t = (*loaded)->GetTable("t");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE((*t)->row(0)[0].is_null());
  EXPECT_TRUE((*t)->row(1)[1].is_null());
  EXPECT_EQ((*t)->row(1)[0].int_value(), 1);
  // The binary format keeps NULL distinct from every string value: a
  // literal "\N" and the empty string both survive verbatim.
  ASSERT_FALSE((*t)->row(0)[1].is_null());
  EXPECT_EQ((*t)->row(0)[1].string_value(), "\\N");
  ASSERT_FALSE((*t)->row(2)[1].is_null());
  EXPECT_EQ((*t)->row(2)[1].string_value(), "");
}

TEST_F(PersistTest, CsvExportCollapsesNullSpelling) {
  Database db;
  ASSERT_TRUE(db.CreateTable(TableSchema("t", {{"a", DataType::kInt64},
                                               {"b", DataType::kString}}))
                  .ok());
  ASSERT_TRUE(db.Insert("t", {Value::Null(), Value::String("\\N")}).ok());
  ASSERT_TRUE(
      SaveDatabase(db, dir_.string(), nullptr, SaveFormat::kCsv).ok());
  EXPECT_TRUE(std::filesystem::exists(dir_ / "t.csv"));
  EXPECT_FALSE(std::filesystem::exists(dir_ / "t.seg"));
  auto loaded = LoadDatabase(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto t = (*loaded)->GetTable("t");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE((*t)->row(0)[0].is_null());
  // Documented caveat of the text format: a literal string equal to the
  // NULL spelling reads back as NULL.
  EXPECT_TRUE((*t)->row(0)[1].is_null());
}

uint64_t DoubleBits(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof u);
  return u;
}

TEST_F(PersistTest, DoublesAreBitExactInBothFormats) {
  // Values chosen to break lossy %.6g printing: a non-terminating binary
  // expansion, a denormal, signed zero, and the classic 0.1 + 0.2.
  const double values[] = {0.1 + 0.2, 1.0 / 3.0, 5e-324, -0.0,
                           6.02214076e23, -1.7976931348623157e308};
  for (SaveFormat format : {SaveFormat::kBinary, SaveFormat::kCsv}) {
    Database db;
    ASSERT_TRUE(
        db.CreateTable(TableSchema("t", {{"x", DataType::kDouble}})).ok());
    for (double d : values) {
      ASSERT_TRUE(db.Insert("t", {Value::Double(d)}).ok());
    }
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(SaveDatabase(db, dir_.string(), nullptr, format).ok());
    auto loaded = LoadDatabase(dir_.string());
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    auto t = (*loaded)->GetTable("t");
    ASSERT_TRUE(t.ok());
    for (size_t r = 0; r < std::size(values); ++r) {
      EXPECT_EQ(DoubleBits((*t)->row(r)[0].double_value()),
                DoubleBits(values[r]))
          << "row " << r << " format " << static_cast<int>(format);
    }
  }
}

/// Bit patterns of SUM(prob) per identifier — the probability fidelity
/// witness: any rounding anywhere in the save/load path changes some bit.
std::vector<uint64_t> SumProbBits(Database* db, const std::string& table) {
  auto rs = db->Query("select id, sum(prob) from " + table +
                      " group by id order by id");
  if (!rs.ok()) return {};
  std::vector<uint64_t> bits;
  for (const Row& row : rs->rows) {
    bits.push_back(DoubleBits(row[1].double_value()));
  }
  return bits;
}

TEST_F(PersistTest, PostWriteRoundTripPreservesVisibleRowsAndStamps) {
  Database db;
  DirtySchema dirty;
  LoadFigure2(&db, &dirty);

  // Drive the MVCC write path so saved chunks carry real version stamps:
  // an insert, an update and a delete against the dirty orders table.
  ASSERT_TRUE(db.ExecuteWrite("insert into orders values ('o100', '99', "
                              "'c2', 7, 0.625)")
                  .ok());
  ASSERT_TRUE(
      db.ExecuteWrite("update orders set cidfk = 'c1' where id = 'o100'")
          .ok());
  ASSERT_TRUE(db.ExecuteWrite("delete from customer where id = 'c3'").ok());

  auto before_rows = db.Query("select * from orders order by id, cidfk");
  ASSERT_TRUE(before_rows.ok());
  std::vector<uint64_t> before_bits = SumProbBits(&db, "orders");
  ASSERT_FALSE(before_bits.empty());

  ASSERT_TRUE(SaveDatabase(db, dir_.string(), &dirty).ok());
  auto loaded = LoadDatabase(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Visible rows identical (dead versions must stay dead after reload).
  auto after_rows = (*loaded)->Query("select * from orders order by id, cidfk");
  ASSERT_TRUE(after_rows.ok());
  ASSERT_EQ(before_rows->rows.size(), after_rows->rows.size());
  for (size_t r = 0; r < before_rows->rows.size(); ++r) {
    for (size_t c = 0; c < before_rows->rows[r].size(); ++c) {
      EXPECT_EQ(before_rows->rows[r][c].TotalCompare(after_rows->rows[r][c]),
                0)
          << "row " << r << " col " << c;
    }
  }
  auto deleted = (*loaded)->Query("select * from customer where id = 'c3'");
  ASSERT_TRUE(deleted.ok());
  EXPECT_TRUE(deleted->rows.empty());

  // SUM(prob) bitwise identical.
  EXPECT_EQ(SumProbBits(loaded->get(), "orders"), before_bits);

  // The committed-version watermark survives, so the next write cannot
  // collide with pre-save version stamps.
  auto orig = db.GetTable("orders");
  auto copy = (*loaded)->GetTable("orders");
  ASSERT_TRUE(orig.ok() && copy.ok());
  EXPECT_EQ((*orig)->committed_version(), (*copy)->committed_version());
  // Physical storage still holds the dead versions (binary keeps history).
  EXPECT_EQ((*orig)->num_rows(), (*copy)->num_rows());
}

TEST_F(PersistTest, BinaryLoadUnderTinyBudgetMatchesUnlimited) {
  Database db;
  DirtySchema dirty;
  LoadFigure2(&db, &dirty);
  std::vector<uint64_t> before_bits = SumProbBits(&db, "orders");
  ASSERT_TRUE(SaveDatabase(db, dir_.string(), &dirty).ok());

  auto loaded = LoadDatabase(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // A 1-byte budget forces every chunk to fault in per pin and be evicted
  // right after; answers must not change.
  (*loaded)->SetMemoryBudget(1);
  EXPECT_EQ(SumProbBits(loaded->get(), "orders"), before_bits);
  EXPECT_GT((*loaded)->buffer_pool()->stats().chunks_evicted, 0u);
}

TEST_F(PersistTest, DatesAndDoublesRoundTrip) {
  Database db;
  ASSERT_TRUE(db.CreateTable(TableSchema("t", {{"d", DataType::kDate},
                                               {"x", DataType::kDouble}}))
                  .ok());
  auto day = ParseDate("1995-03-15");
  ASSERT_TRUE(day.ok());
  ASSERT_TRUE(db.Insert("t", {Value::Date(*day), Value::Double(0.125)}).ok());
  ASSERT_TRUE(SaveDatabase(db, dir_.string()).ok());
  auto loaded = LoadDatabase(dir_.string());
  ASSERT_TRUE(loaded.ok());
  auto t = (*loaded)->GetTable("t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->row(0)[0].ToString(), "1995-03-15");
  EXPECT_DOUBLE_EQ((*t)->row(0)[1].double_value(), 0.125);
}

TEST_F(PersistTest, SaveOverLoadedDirectoryPreservesEvictedChunks) {
  // The normal persist workflow: load a database, work on it, save it back
  // to the SAME directory. The loaded table's evicted chunks are backed by
  // the very .seg files the save replaces; the save must go through a temp
  // file + rename so those payloads are never truncated out from under the
  // pin loop (and a failed save can never destroy the previous segment).
  {
    Database db;
    DirtySchema dirty;
    LoadFigure2(&db, &dirty);
    ASSERT_TRUE(SaveDatabase(db, dir_.string(), &dirty).ok());
  }
  auto loaded = LoadDatabase(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // Tiny budget: every chunk stays evicted-clean, reading from dir_'s files.
  (*loaded)->SetMemoryBudget(1);
  std::vector<uint64_t> before_bits = SumProbBits(loaded->get(), "orders");
  ASSERT_FALSE(before_bits.empty());
  // Dirty one table so the save mixes resident-dirty and evicted chunks.
  ASSERT_TRUE((*loaded)
                  ->ExecuteWrite("update customer set balance = 123456 "
                                 "where id = 'c1'")
                  .ok());
  auto customer_before =
      (*loaded)->Query("select * from customer order by id");
  ASSERT_TRUE(customer_before.ok());

  ASSERT_TRUE(SaveDatabase(**loaded, dir_.string()).ok());

  // The still-open database keeps answering from the re-pointed backings...
  EXPECT_EQ(SumProbBits(loaded->get(), "orders"), before_bits);
  auto customer_after = (*loaded)->Query("select * from customer order by id");
  ASSERT_TRUE(customer_after.ok());
  ASSERT_EQ(customer_before->rows.size(), customer_after->rows.size());
  // ...and a fresh load sees the saved state, write included.
  auto reloaded = LoadDatabase(dir_.string());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(SumProbBits(reloaded->get(), "orders"), before_bits);
  auto balance = (*reloaded)->Query(
      "select balance from customer where id = 'c1'");
  ASSERT_TRUE(balance.ok());
  // Figure 2's customer has two candidate tuples for c1; the update hit both.
  ASSERT_EQ(balance->rows.size(), 2u);
  for (const Row& r : balance->rows) {
    EXPECT_EQ(r[0].int_value(), 123456);
  }
}

TEST_F(PersistTest, RepeatedSavesToSameDirectoryStayStable) {
  {
    Database db;
    ASSERT_TRUE(
        db.CreateTable(TableSchema("t", {{"a", DataType::kInt64}})).ok());
    for (int64_t i = 0; i < 300; ++i) {
      ASSERT_TRUE(db.Insert("t", {Value::Int(i)}).ok());
    }
    (*db.GetTable("t"))->Rechunk(64);
    ASSERT_TRUE(SaveDatabase(db, dir_.string()).ok());
  }
  auto loaded = LoadDatabase(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  (*loaded)->SetMemoryBudget(1);
  for (int cycle = 0; cycle < 3; ++cycle) {
    ASSERT_TRUE(SaveDatabase(**loaded, dir_.string()).ok())
        << "cycle " << cycle;
    auto rs = (*loaded)->Query("select sum(a) from t");
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    EXPECT_EQ(rs->rows[0][0].int_value(), 299 * 300 / 2) << "cycle " << cycle;
  }
  EXPECT_FALSE(std::filesystem::exists(dir_ / "t.seg.tmp"));
}

TEST_F(PersistTest, CorruptFooterBoundsRejectedWithoutCrash) {
  Database db;
  ASSERT_TRUE(
      db.CreateTable(TableSchema("t", {{"a", DataType::kInt64}})).ok());
  ASSERT_TRUE(db.Insert("t", {Value::Int(1)}).ok());
  ASSERT_TRUE(SaveDatabase(db, dir_.string()).ok());

  // Patch the footer's meta offset/length so their sum wraps around u64: a
  // summed bounds check would pass and the loader would then try to
  // allocate a near-2^64-byte string. Must come back as a clean status.
  const std::filesystem::path seg = dir_ / "t.seg";
  const auto size = std::filesystem::file_size(seg);
  ASSERT_GT(size, 24u);
  std::fstream f(seg, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  const uint64_t meta_offset = 200;
  const uint64_t meta_length = UINT64_MAX - 150;  // offset + length wraps
  f.seekp(static_cast<std::streamoff>(size - 24));
  f.write(reinterpret_cast<const char*>(&meta_offset), 8);
  f.write(reinterpret_cast<const char*>(&meta_length), 8);
  f.close();

  auto loaded = LoadDatabase(dir_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PersistTest, MissingDirectoryReportsNotFound) {
  auto loaded = LoadDatabase((dir_ / "nope").string());
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(PersistTest, SaveWithoutDirtySchemaOmitsFile) {
  Database db;
  ASSERT_TRUE(
      db.CreateTable(TableSchema("t", {{"a", DataType::kInt64}})).ok());
  ASSERT_TRUE(SaveDatabase(db, dir_.string()).ok());
  EXPECT_FALSE(std::filesystem::exists(dir_ / "dirty_schema.txt"));
  DirtySchema dirty;
  auto loaded = LoadDatabase(dir_.string(), &dirty);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(dirty.tables().empty());
}

}  // namespace
}  // namespace conquer
