// Unit tests for CSV import/export.

#include "engine/csv.h"

#include <gtest/gtest.h>

namespace conquer {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable(TableSchema("t", {{"a", DataType::kInt64},
                                                  {"b", DataType::kString},
                                                  {"c", DataType::kDouble},
                                                  {"d", DataType::kDate}}))
                    .ok());
  }
  Database db_;
};

TEST(ParseCsvLineTest, BasicFields) {
  CsvOptions options;
  auto fields = ParseCsvLine("a,b,,d", options);
  ASSERT_TRUE(fields.ok());
  ASSERT_EQ(fields->size(), 4u);
  EXPECT_EQ((*fields)[0], "a");
  EXPECT_EQ((*fields)[2], "");
}

TEST(ParseCsvLineTest, QuotedFieldsWithEscapes) {
  CsvOptions options;
  auto fields = ParseCsvLine(R"("hello, world","she said ""hi""",plain)",
                             options);
  ASSERT_TRUE(fields.ok());
  ASSERT_EQ(fields->size(), 3u);
  EXPECT_EQ((*fields)[0], "hello, world");
  EXPECT_EQ((*fields)[1], "she said \"hi\"");
  EXPECT_EQ((*fields)[2], "plain");
}

TEST(ParseCsvLineTest, UnterminatedQuoteIsError) {
  CsvOptions options;
  EXPECT_FALSE(ParseCsvLine("\"oops", options).ok());
}

TEST(ParseCsvLineTest, QuoteInUnquotedFieldIsError) {
  CsvOptions options;
  // RFC 4180: a quote may only open at the start of a field. These used to
  // parse silently (the quote was swallowed or treated as data).
  EXPECT_FALSE(ParseCsvLine("ab\"cd,x", options).ok());
  EXPECT_FALSE(ParseCsvLine("a,b\"", options).ok());
}

TEST(ParseCsvLineTest, TrailingCharactersAfterClosingQuoteIsError) {
  CsvOptions options;
  EXPECT_FALSE(ParseCsvLine("\"ab\"cd,x", options).ok());
  EXPECT_FALSE(ParseCsvLine("\"ab\" ,x", options).ok());
  // ...but an escaped quote inside the field is fine.
  auto ok = ParseCsvLine("\"ab\"\"cd\",x", options);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)[0], "ab\"cd");
}

TEST(ParseCsvLineTest, CustomDelimiter) {
  CsvOptions options;
  options.delimiter = '|';
  auto fields = ParseCsvLine("x|y,z|w", options);
  ASSERT_TRUE(fields.ok());
  ASSERT_EQ(fields->size(), 3u);
  EXPECT_EQ((*fields)[1], "y,z");
}

TEST(FormatCsvLineTest, QuotesOnlyWhenNeeded) {
  CsvOptions options;
  EXPECT_EQ(FormatCsvLine({"plain", "with,comma", "with\"quote"}, options),
            R"(plain,"with,comma","with""quote")");
}

TEST(FormatCsvLineTest, RoundTripsThroughParse) {
  CsvOptions options;
  std::vector<std::string> fields = {"a,b", "\"x\"", "", "line\nbreak"};
  auto reparsed = ParseCsvLine(FormatCsvLine(fields, options), options);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(*reparsed, fields);
}

TEST_F(CsvTest, LoadsTypedRows) {
  const char* csv =
      "a,b,c,d\n"
      "1,hello,2.5,1995-03-15\n"
      "2,\"with,comma\",0.125,2000-01-01\n";
  auto n = LoadCsvString(&db_, "t", csv);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 2u);
  auto rs = db_.Query("select a, b, c, d from t where a = 2");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_EQ(rs->rows[0][1].string_value(), "with,comma");
  EXPECT_EQ(rs->rows[0][3].ToString(), "2000-01-01");
}

TEST_F(CsvTest, NullLiteralLoadsAsNull) {
  CsvOptions options;
  options.null_literal = "NULL";
  auto n = LoadCsvString(&db_, "t", "a,b,c,d\nNULL,x,NULL,NULL\n", options);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  auto table = db_.GetTable("t");
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE((*table)->row(0)[0].is_null());
  EXPECT_TRUE((*table)->row(0)[3].is_null());
}

TEST_F(CsvTest, HeaderMismatchRejected) {
  EXPECT_FALSE(LoadCsvString(&db_, "t", "a,b,c\n1,x,2.5\n").ok());
  EXPECT_FALSE(LoadCsvString(&db_, "t", "a,b,WRONG,d\n1,x,2.5,2000-01-01\n")
                   .ok());
}

TEST_F(CsvTest, HeaderlessMode) {
  CsvOptions options;
  options.has_header = false;
  auto n = LoadCsvString(&db_, "t", "7,y,1.0,1999-12-31\n", options);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 1u);
}

TEST_F(CsvTest, BadValuesReportLineAndColumn) {
  auto n = LoadCsvString(&db_, "t", "a,b,c,d\nnot_int,x,2.5,2000-01-01\n");
  ASSERT_FALSE(n.ok());
  EXPECT_NE(n.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(n.status().message().find("'a'"), std::string::npos);
}

TEST_F(CsvTest, WrongArityReportsLine) {
  auto n = LoadCsvString(&db_, "t", "a,b,c,d\n1,x\n");
  ASSERT_FALSE(n.ok());
  EXPECT_NE(n.status().message().find("line 2"), std::string::npos);
}

TEST_F(CsvTest, SkipsBlankLinesAndCarriageReturns) {
  auto n = LoadCsvString(&db_, "t",
                         "a,b,c,d\r\n1,x,2.5,2000-01-01\r\n\n"
                         "2,y,3.5,2001-01-01\n");
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 2u);
}

TEST_F(CsvTest, QuotedFieldSpansPhysicalLines) {
  // FormatCsvLine quotes embedded newlines, so the loader must keep reading
  // physical lines until the quote closes. This used to fail with a
  // "unterminated quoted CSV field" error on the first physical line.
  const char* csv =
      "a,b,c,d\n"
      "1,\"first\nsecond\",2.5,2000-01-01\n"
      "2,\"one\n\ntwo\",3.5,2001-01-01\n";
  auto n = LoadCsvString(&db_, "t", csv);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 2u);
  auto table = db_.GetTable("t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->row(0)[1].string_value(), "first\nsecond");
  // Blank physical lines inside a quoted field are data, not skipped.
  EXPECT_EQ((*table)->row(1)[1].string_value(), "one\n\ntwo");
}

TEST_F(CsvTest, UnterminatedQuoteReportsRecordStartLine) {
  auto n = LoadCsvString(&db_, "t", "a,b,c,d\n1,x,2.5,2000-01-01\n2,\"open\n");
  ASSERT_FALSE(n.ok());
  EXPECT_NE(n.status().message().find("line 3"), std::string::npos)
      << n.status().ToString();
}

TEST_F(CsvTest, ErrorsAfterMultiLineRecordReportItsFirstLine) {
  auto n = LoadCsvString(&db_, "t",
                         "a,b,c,d\n"
                         "not_int,\"x\ny\",2.5,2000-01-01\n");
  ASSERT_FALSE(n.ok());
  EXPECT_NE(n.status().message().find("line 2"), std::string::npos)
      << n.status().ToString();
}

TEST_F(CsvTest, ExportImportRoundTripPreservesAwkwardStrings) {
  // Strings exercising every quoting rule: delimiter, quotes, newlines and
  // their combinations. (The empty string is excluded: it is the default
  // null literal and deliberately reloads as NULL.)
  const std::vector<std::string> awkward = {
      "plain",        "comma,inside",    "\"quoted\"",  "line\nbreak",
      "two\n\nblank", "mix,\"of\nall\"", "trailing\n",
  };
  int64_t id = 0;
  for (const std::string& s : awkward) {
    ASSERT_TRUE(db_.Insert("t", {Value::Int(id++), Value::String(s),
                                 Value::Double(0.5), Value::Date(0)})
                    .ok());
  }
  auto rs = db_.Query("select a, b, c, d from t order by a");
  ASSERT_TRUE(rs.ok());
  std::string csv = ResultSetToCsv(*rs);

  Database db2;
  ASSERT_TRUE(db2.CreateTable(TableSchema("t", {{"a", DataType::kInt64},
                                                {"b", DataType::kString},
                                                {"c", DataType::kDouble},
                                                {"d", DataType::kDate}}))
                  .ok());
  auto n = LoadCsvString(&db2, "t", csv);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  ASSERT_EQ(*n, awkward.size());
  auto rs2 = db2.Query("select a, b, c, d from t order by a");
  ASSERT_TRUE(rs2.ok());
  ASSERT_EQ(rs2->num_rows(), rs->num_rows());
  for (size_t r = 0; r < rs->num_rows(); ++r) {
    EXPECT_EQ(rs2->rows[r][1].string_value(), awkward[r]) << "row " << r;
  }
}

TEST_F(CsvTest, ResultSetRoundTrip) {
  ASSERT_TRUE(LoadCsvString(&db_, "t",
                            "a,b,c,d\n1,x,2.5,2000-01-01\n2,y,3.5,2001-01-01\n")
                  .ok());
  auto rs = db_.Query("select a, b from t order by a");
  ASSERT_TRUE(rs.ok());
  std::string csv = ResultSetToCsv(*rs);
  EXPECT_EQ(csv, "a,b\n1,x\n2,y\n");
}

TEST_F(CsvTest, UnknownTableRejected) {
  EXPECT_EQ(LoadCsvString(&db_, "nosuch", "x\n1\n").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace conquer
