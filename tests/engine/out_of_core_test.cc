// Out-of-core execution tests: lazy segment-backed loads, zone-map pruning
// that must not fault I/O, and the EXPLAIN ANALYZE I/O counters.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/persist.h"
#include "exec/query_stats.h"
#include "storage/table.h"

namespace conquer {
namespace {

struct IoTotals {
  uint64_t loaded = 0;
  uint64_t skipped = 0;
};

void SumIo(const PlanNodeStats& node, IoTotals* t) {
  t->loaded += node.metrics.chunks_loaded;
  t->skipped += node.metrics.chunks_skipped;
  for (const PlanNodeStats& c : node.children) SumIo(c, t);
}

class OutOfCoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("conquer_ooc_" + std::string(::testing::UnitTest::GetInstance()
                                             ->current_test_info()
                                             ->name()));
    std::filesystem::remove_all(dir_);

    // 16 chunks of 64 rows, `a` ascending so zone maps give perfect pruning.
    Database db;
    TableSchema schema("t", {{"a", DataType::kInt64},
                             {"s", DataType::kString},
                             {"p", DataType::kDouble}});
    ASSERT_TRUE(db.CreateTable(schema).ok());
    std::vector<Row> rows;
    for (int64_t i = 0; i < 16 * 64; ++i) {
      rows.push_back({Value::Int(i), Value::String("v" + std::to_string(i)),
                      Value::Double(static_cast<double>(i))});
    }
    ASSERT_TRUE(db.InsertMany("t", std::move(rows)).ok());
    (*db.GetTable("t"))->Rechunk(64);
    ASSERT_TRUE(SaveDatabase(db, dir_.string()).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(OutOfCoreTest, ZoneMapSkippedChunksCostZeroReads) {
  auto loaded = LoadDatabase(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  Database* db = loaded->get();
  // Keep every chunk evicted between pins: each load is observable.
  db->SetMemoryBudget(1);

  // Only rows 960..1023 qualify — chunk 15. The other 15 chunks must be
  // pruned by their resident zone maps without touching the segment file.
  QueryStats stats;
  auto rs = db->Query("select sum(a) from t where a >= 960", &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows[0][0].int_value(), (960 + 1023) * 64 / 2);

  IoTotals io;
  SumIo(stats.plan, &io);
  EXPECT_EQ(io.skipped, 15u);
  EXPECT_EQ(io.loaded, 1u) << "a zone-map-skipped chunk faulted I/O";
}

TEST_F(OutOfCoreTest, FullScanLoadsEveryChunkExactlyOnce) {
  auto loaded = LoadDatabase(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  Database* db = loaded->get();
  db->SetMemoryBudget(1);

  QueryStats stats;
  auto rs = db->Query("select sum(a) from t", &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows[0][0].int_value(), (16 * 64 - 1) * (16 * 64) / 2);

  IoTotals io;
  SumIo(stats.plan, &io);
  EXPECT_EQ(io.loaded, 16u);
}

TEST_F(OutOfCoreTest, ExplainAnalyzeRendersIoCounters) {
  auto loaded = LoadDatabase(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  Database* db = loaded->get();
  db->SetMemoryBudget(1);

  auto plan = db->ExplainAnalyze("select sum(a) from t where a >= 960");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->find("chunks_loaded=1"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("chunks_skipped=15"), std::string::npos) << *plan;
}

TEST_F(OutOfCoreTest, IndexScanPinsOnlyMatchingChunks) {
  auto loaded = LoadDatabase(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  Database* db = loaded->get();
  db->SetMemoryBudget(1);
  ASSERT_TRUE(db->CreateIndex("t", "a").ok());
  ASSERT_TRUE(db->Analyze("t").ok());
  // Index build and stats faulted chunks; evict them again so the probe's
  // own I/O is what we measure.
  db->SetMemoryBudget(1);

  QueryStats stats;
  auto rs = db->Query("select s from t where a = 100", &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].string_value(), "v100");

  IoTotals io;
  SumIo(stats.plan, &io);
  // One matching position in chunk 1: at most that single chunk loads (zero
  // if the planner fell back to a pruned seq scan that pinned one chunk too).
  EXPECT_LE(io.loaded, 1u);
}

TEST_F(OutOfCoreTest, SelectiveProbeUnderTightBudgetFaultsOnlyMatchingChunks) {
  // Fresh database with *shuffled* keys: every chunk's zone map spans
  // nearly the full key range, so zone pruning is useless and only the
  // per-chunk index decides which chunks can hold matches.
  const std::string dir = dir_.string() + "_scattered";
  std::filesystem::remove_all(dir);
  {
    Database db;
    TableSchema schema("s",
                       {{"k", DataType::kInt64}, {"v", DataType::kString}});
    ASSERT_TRUE(db.CreateTable(schema).ok());
    std::vector<Row> rows;
    for (int64_t i = 0; i < 16 * 64; ++i) {
      // 617 and 1021 are coprime: i -> (617 i) mod 1021 scatters keys, so
      // chunk zones are useless but each key lands in very few chunks.
      rows.push_back({Value::Int((i * 617) % 1021),
                      Value::String("r" + std::to_string(i))});
    }
    ASSERT_TRUE(db.InsertMany("s", std::move(rows)).ok());
    (*db.GetTable("s"))->Rechunk(64);
    ASSERT_TRUE(SaveDatabase(db, dir).ok());
  }
  auto loaded = LoadDatabase(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  Database* db = loaded->get();
  ASSERT_TRUE(db->CreateIndex("s", "k").ok());
  ASSERT_TRUE(db->Analyze("s").ok());
  // ~10% of the ~20KB payload: a chunk or two resident at a time. Index
  // slices and zone maps stay resident regardless (never faulted).
  db->SetMemoryBudget(2 * 1024);

  // Key 440 = (617*100) mod 1021 occurs exactly once, at row 100 (chunk 1).
  auto plan = db->Explain("select v from s where k = 440");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("IndexScan"), std::string::npos) << *plan;

  QueryStats stats;
  auto rs = db->Query("select v from s where k = 440", &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].string_value(), "r100");
  IoTotals io;
  SumIo(stats.plan, &io);
  EXPECT_LE(io.loaded, 1u) << "index probe faulted a non-matching chunk";

  // Contrast: with index access disabled the same query must fall back to
  // scanning — and fault essentially the whole table through the budget.
  db->mutable_exec_context()->enable_index_scan = false;
  QueryStats scan_stats;
  auto rs2 = db->Query("select v from s where k = 440", &scan_stats);
  db->mutable_exec_context()->enable_index_scan = true;
  ASSERT_TRUE(rs2.ok()) << rs2.status().ToString();
  ASSERT_EQ(rs2->rows.size(), 1u);
  EXPECT_EQ(rs2->rows[0][0].string_value(), "r100");
  IoTotals scan_io;
  SumIo(scan_stats.plan, &scan_io);
  EXPECT_GE(scan_io.loaded + scan_io.skipped, 14u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace conquer
