// Differential clean-answer harness: seeded-random dirty databases of 2-4
// tables with mixed cluster sizes (including exact probability-sum = 1
// edge cases), random rewritable SPJ queries, and two independent engines —
// CleanAnswerEngine::Query (RewriteClean over SQL) against
// NaiveCandidateEvaluator::Evaluate (candidate enumeration, Dfn 3-5).
//
// The same matrix runs sequentially and with a worker pool (morsel size
// lowered so the small tables actually take the parallel operator paths),
// asserting that parallel probabilities are BIT-identical to the sequential
// run, not merely close: the partitioned aggregation is designed so float
// accumulation order never depends on thread count.

#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "common/rng.h"
#include "common/str_util.h"
#include "core/clean_engine.h"
#include "core/naive_eval.h"

namespace conquer {
namespace {

uint64_t Bits(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof u);
  return u;
}

bool RowsEqual(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].TotalCompare(b[i]) != 0) return false;
  }
  return true;
}

/// A randomly generated dirty database: a join tree of 2-4 tables with the
/// root at t0; each non-root table is referenced by an earlier one.
struct RandomDirtyDb {
  Database db;
  DirtySchema dirty;
  std::vector<std::string> tables;
  std::vector<std::vector<std::string>> attrs;
  std::vector<int> parent_of;
};

/// Cluster probabilities: mostly random (normalized), but a configurable
/// slice of entities get exact dyadic distributions (1.0, 0.5+0.5,
/// 0.25*4) whose sums are exactly 1.0 in binary floating point — the
/// edge cases where "approximately consistent" answers sit exactly on the
/// probability-1 boundary.
std::vector<double> MakeClusterProbs(Rng* rng, int* k) {
  if (rng->Chance(0.35)) {
    switch (rng->Uniform(0, 2)) {
      case 0: *k = 1; return {1.0};
      case 1: *k = 2; return {0.5, 0.5};
      default: *k = 4; return {0.25, 0.25, 0.25, 0.25};
    }
  }
  *k = static_cast<int>(rng->Uniform(1, 4));
  std::vector<double> probs(*k);
  double sum = 0;
  for (double& p : probs) {
    p = 0.05 + rng->NextDouble();
    sum += p;
  }
  for (double& p : probs) p /= sum;
  return probs;
}

void BuildRandomDb(uint64_t seed, RandomDirtyDb* out) {
  Rng rng(seed);
  int num_tables = static_cast<int>(rng.Uniform(2, 4));

  std::vector<int> referenced_by(num_tables, -1);
  for (int t = 1; t < num_tables; ++t) {
    referenced_by[t] = static_cast<int>(rng.Uniform(0, t - 1));
  }
  out->parent_of = referenced_by;

  // Entities with probabilities decided up front so the candidate count can
  // be tamed before any rows exist.
  std::vector<std::vector<std::vector<double>>> entity_probs(num_tables);
  int64_t product = 1;
  for (int t = 0; t < num_tables; ++t) {
    int entities = static_cast<int>(rng.Uniform(2, 4));
    for (int e = 0; e < entities; ++e) {
      int k = 0;
      entity_probs[t].push_back(MakeClusterProbs(&rng, &k));
      product *= k;
    }
  }
  for (auto& table_entities : entity_probs) {
    for (auto& probs : table_entities) {
      if (probs.size() > 1 && product > 4096) {
        product /= static_cast<int64_t>(probs.size());
        probs = {1.0};
      }
    }
  }

  // Children before parents so FK targets exist at insert time.
  for (int t = num_tables - 1; t >= 0; --t) {
    std::string name = "t" + std::to_string(t);
    std::vector<ColumnDef> cols = {{"id", DataType::kString}};
    int num_attrs = static_cast<int>(rng.Uniform(1, 2));
    std::vector<std::string> attr_names;
    for (int a = 0; a < num_attrs; ++a) {
      attr_names.push_back(StringPrintf("a%d_%d", t, a));
      cols.push_back({attr_names.back(), DataType::kInt64});
    }
    std::vector<int> children;
    for (int c = 0; c < num_tables; ++c) {
      if (referenced_by[c] == t) children.push_back(c);
    }
    for (int c : children) {
      cols.push_back({StringPrintf("fk%d", c), DataType::kString});
    }
    cols.push_back({"prob", DataType::kDouble});
    ASSERT_TRUE(out->db.CreateTable(TableSchema(name, cols)).ok());

    DirtyTableInfo info;
    info.table_name = name;
    info.id_column = "id";
    info.prob_column = "prob";
    for (int c : children) {
      info.foreign_ids.push_back(
          {StringPrintf("fk%d", c), "t" + std::to_string(c)});
    }
    ASSERT_TRUE(out->dirty.AddTable(info).ok());

    for (size_t e = 0; e < entity_probs[t].size(); ++e) {
      const std::vector<double>& probs = entity_probs[t][e];
      for (size_t j = 0; j < probs.size(); ++j) {
        Row row;
        row.push_back(Value::String(StringPrintf("t%d_e%zu", t, e)));
        for (int a = 0; a < num_attrs; ++a) {
          row.push_back(Value::Int(rng.Uniform(0, 5)));
        }
        for (int c : children) {
          int64_t target = rng.Uniform(
              0, static_cast<int64_t>(entity_probs[c].size()) - 1);
          row.push_back(Value::String(
              StringPrintf("t%d_e%lld", c, (long long)target)));
        }
        row.push_back(Value::Double(probs[j]));
        ASSERT_TRUE(out->db.Insert(name, std::move(row)).ok());
      }
    }
    out->tables.insert(out->tables.begin(), name);
    out->attrs.insert(out->attrs.begin(), attr_names);
  }
}

std::string BuildRandomRewritableQuery(uint64_t seed,
                                       const RandomDirtyDb& db) {
  Rng rng(seed ^ 0x5eed5eed);
  int n = static_cast<int>(db.tables.size());
  std::vector<std::string> select = {"t0.id"};
  for (int t = 0; t < n; ++t) {
    for (const std::string& a : db.attrs[t]) {
      if (rng.Chance(0.6)) select.push_back(db.tables[t] + "." + a);
    }
    if (t > 0 && rng.Chance(0.4)) select.push_back(db.tables[t] + ".id");
  }
  std::vector<std::string> where;
  for (int t = 1; t < n; ++t) {
    where.push_back(StringPrintf("t%d.fk%d = t%d.id", db.parent_of[t], t, t));
  }
  const char* ops[] = {"=", "<>", "<", "<=", ">", ">="};
  for (int t = 0; t < n; ++t) {
    for (const std::string& a : db.attrs[t]) {
      if (rng.Chance(0.5)) {
        where.push_back(StringPrintf("%s.%s %s %lld", db.tables[t].c_str(),
                                     a.c_str(), ops[rng.Uniform(0, 5)],
                                     (long long)rng.Uniform(0, 5)));
      }
    }
  }
  std::string sql = "select " + Join(select, ", ") + " from ";
  for (int t = 0; t < n; ++t) {
    if (t > 0) sql += ", ";
    sql += db.tables[t];
  }
  if (!where.empty()) sql += " where " + Join(where, " and ");
  return sql;
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, EngineMatchesOracleSequentiallyAndInParallel) {
  RandomDirtyDb rdb;
  BuildRandomDb(GetParam(), &rdb);
  // Small tables: shrink the morsel so the parallel scan/join/aggregate
  // paths actually engage instead of falling back to sequential.
  rdb.db.mutable_exec_context()->morsel_size = 2;

  CleanAnswerEngine engine(&rdb.db, &rdb.dirty);
  NaiveCandidateEvaluator naive(&rdb.db, &rdb.dirty);

  for (uint64_t qseed = 0; qseed < 3; ++qseed) {
    std::string sql =
        BuildRandomRewritableQuery(GetParam() * 131 + qseed, rdb);
    SCOPED_TRACE(sql);

    auto check = engine.Check(sql);
    ASSERT_TRUE(check.ok()) << check.status().ToString();
    ASSERT_TRUE(check->rewritable) << check->reason;

    auto slow = naive.Evaluate(sql, /*max_candidates=*/1 << 13);
    ASSERT_TRUE(slow.ok()) << slow.status().ToString();

    rdb.db.SetThreads(1);
    auto sequential = engine.Query(sql);
    ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();

    ASSERT_EQ(sequential->answers.size(), slow->answers.size());
    for (const CleanAnswer& a : slow->answers) {
      ASSERT_NEAR(sequential->ProbabilityOf(a.row), a.probability, 1e-9);
    }

    // Every (batch size, thread count) combination must reproduce the
    // sequential baseline exactly: same rows, same order, bit-identical
    // SUM(prob) probabilities. Batch size 1 degenerates to row-at-a-time,
    // 7 leaves ragged final batches everywhere, 1024 is the default.
    for (size_t batch_size : {size_t{1}, size_t{7}, size_t{1024}}) {
      for (size_t threads : {size_t{1}, size_t{3}}) {
        rdb.db.mutable_exec_context()->batch_size = batch_size;
        rdb.db.SetThreads(threads);
        auto run = engine.Query(sql);
        ASSERT_TRUE(run.ok()) << run.status().ToString();
        const std::string label = " (batch_size=" + std::to_string(batch_size) +
                                  ", threads=" + std::to_string(threads) + ")";
        ASSERT_EQ(run->answers.size(), sequential->answers.size()) << label;
        for (size_t i = 0; i < run->answers.size(); ++i) {
          EXPECT_TRUE(
              RowsEqual(run->answers[i].row, sequential->answers[i].row))
              << "answer row " << i << " differs" << label;
          EXPECT_EQ(Bits(run->answers[i].probability),
                    Bits(sequential->answers[i].probability))
              << "probability of answer " << i << " is not bit-identical"
              << label;
        }
      }
    }
    rdb.db.mutable_exec_context()->batch_size = 1024;

    // Chunk geometry must be invisible: capacity 1 makes every zone map
    // trivially tight (maximum pruning opportunity), 7 leaves ragged chunk
    // tails, 65536 is the production default with everything in one chunk.
    // Results must stay bit-identical to the sequential baseline across
    // capacities and thread counts.
    for (size_t capacity : {size_t{1}, size_t{7}, size_t{1024},
                            size_t{65536}}) {
      for (const std::string& name : rdb.tables) {
        auto t = rdb.db.GetTable(name);
        ASSERT_TRUE(t.ok());
        (*t)->Rechunk(capacity);
      }
      for (size_t threads : {size_t{1}, size_t{3}}) {
        rdb.db.SetThreads(threads);
        auto run = engine.Query(sql);
        ASSERT_TRUE(run.ok()) << run.status().ToString();
        const std::string label = " (chunk_capacity=" +
                                  std::to_string(capacity) +
                                  ", threads=" + std::to_string(threads) + ")";
        ASSERT_EQ(run->answers.size(), sequential->answers.size()) << label;
        for (size_t i = 0; i < run->answers.size(); ++i) {
          EXPECT_TRUE(
              RowsEqual(run->answers[i].row, sequential->answers[i].row))
              << "answer row " << i << " differs" << label;
          EXPECT_EQ(Bits(run->answers[i].probability),
                    Bits(sequential->answers[i].probability))
              << "probability of answer " << i << " is not bit-identical"
              << label;
        }
      }
    }
    for (const std::string& name : rdb.tables) {
      auto t = rdb.db.GetTable(name);
      ASSERT_TRUE(t.ok());
      (*t)->Rechunk(Table::kDefaultChunkCapacity);
    }
    rdb.db.SetThreads(1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range<uint64_t>(1, 25));

// Determinism at realistic scale and the default morsel size: a grouped
// SUM over doubles whose addition order would visibly drift under a
// thread-dependent merge.
class ParallelDeterminismTest : public ::testing::Test {
 protected:
  static std::vector<Row> Run(Database* db, const std::string& sql,
                              size_t threads) {
    db->SetThreads(threads);
    auto rs = db->Query(sql);
    EXPECT_TRUE(rs.ok()) << rs.status().ToString();
    return rs.ok() ? std::move(rs->rows) : std::vector<Row>{};
  }

  static void ExpectBitIdentical(const std::vector<Row>& a,
                                 const std::vector<Row>& b,
                                 const std::string& label) {
    ASSERT_EQ(a.size(), b.size()) << label;
    for (size_t r = 0; r < a.size(); ++r) {
      ASSERT_EQ(a[r].size(), b[r].size()) << label;
      for (size_t c = 0; c < a[r].size(); ++c) {
        if (a[r][c].type() == DataType::kDouble &&
            b[r][c].type() == DataType::kDouble) {
          EXPECT_EQ(Bits(a[r][c].double_value()), Bits(b[r][c].double_value()))
              << label << ": row " << r << " col " << c;
        } else {
          EXPECT_EQ(a[r][c].TotalCompare(b[r][c]), 0)
              << label << ": row " << r << " col " << c;
        }
      }
    }
  }
};

TEST_F(ParallelDeterminismTest, GroupBySumBitIdenticalAcrossThreadCounts) {
  Database db;
  ASSERT_TRUE(db.CreateTable(TableSchema("t", {{"g", DataType::kInt64},
                                               {"v", DataType::kDouble}}))
                  .ok());
  Rng rng(7);
  std::vector<Row> rows;
  for (int i = 0; i < 20000; ++i) {
    rows.push_back({Value::Int(rng.Uniform(0, 199)),
                    Value::Double(rng.NextDouble() - 0.5)});
  }
  ASSERT_TRUE(db.InsertMany("t", std::move(rows)).ok());

  const std::string sql = "select g, sum(v), count(*) from t group by g";
  std::vector<Row> baseline = Run(&db, sql, 1);
  ASSERT_EQ(baseline.size(), 200u);
  for (size_t threads : {2u, 3u, 4u}) {
    ExpectBitIdentical(baseline, Run(&db, sql, threads),
                       "threads=" + std::to_string(threads));
  }
}

TEST_F(ParallelDeterminismTest, JoinAggregateBitIdenticalAcrossThreadCounts) {
  Database db;
  ASSERT_TRUE(db.CreateTable(TableSchema("fact", {{"k", DataType::kInt64},
                                                  {"v", DataType::kDouble}}))
                  .ok());
  ASSERT_TRUE(db.CreateTable(TableSchema("dim", {{"k", DataType::kInt64},
                                                 {"w", DataType::kDouble}}))
                  .ok());
  Rng rng(11);
  std::vector<Row> fact_rows;
  for (int i = 0; i < 12000; ++i) {
    fact_rows.push_back({Value::Int(rng.Uniform(0, 3999)),
                         Value::Double(rng.NextDouble())});
  }
  ASSERT_TRUE(db.InsertMany("fact", std::move(fact_rows)).ok());
  std::vector<Row> dim_rows;
  for (int i = 0; i < 4000; ++i) {
    dim_rows.push_back({Value::Int(i), Value::Double(rng.NextDouble())});
  }
  ASSERT_TRUE(db.InsertMany("dim", std::move(dim_rows)).ok());

  const std::string sql =
      "select dim.k, sum(fact.v), sum(dim.w) from fact, dim "
      "where fact.k = dim.k group by dim.k";
  std::vector<Row> baseline = Run(&db, sql, 1);
  ASSERT_FALSE(baseline.empty());
  for (size_t threads : {2u, 4u}) {
    ExpectBitIdentical(baseline, Run(&db, sql, threads),
                       "threads=" + std::to_string(threads));
  }
}

// Out-of-core differential sweep: with only two chunks' worth of memory
// budget the scans evict and reload constantly, including right after
// MVCC writes dirtied chunks (forcing spill-file round-trips). Clean
// answers must stay bit-identical to the unconstrained sequential run
// across the batch-size / thread matrix.
TEST(OutOfCoreDifferentialTest, TwoChunkBudgetIsBitIdenticalAcrossMatrix) {
  RandomDirtyDb rdb;
  BuildRandomDb(42, &rdb);
  rdb.db.mutable_exec_context()->morsel_size = 2;
  for (const std::string& name : rdb.tables) {
    auto t = rdb.db.GetTable(name);
    ASSERT_TRUE(t.ok());
    (*t)->Rechunk(7);
  }
  // Size the budget off the pool's own accounting: room for two average
  // chunks, so most of every table is evicted at any moment.
  const BufferPool::Stats st = rdb.db.buffer_pool()->stats();
  ASSERT_GT(st.registered_chunks, 2u);
  ASSERT_GT(st.resident_bytes, 0u);
  const uint64_t two_chunks = 2 * (st.resident_bytes / st.registered_chunks);

  CleanAnswerEngine engine(&rdb.db, &rdb.dirty);
  const std::string sql = BuildRandomRewritableQuery(42 * 131, rdb);
  SCOPED_TRACE(sql);

  for (int phase = 0; phase < 2; ++phase) {
    if (phase == 1) {
      // Dirty some chunks through the write path, then shrink the budget
      // again so the dirtied payloads must survive a spill round-trip.
      rdb.db.SetMemoryBudget(0);
      ASSERT_TRUE(
          rdb.db.ExecuteWrite("delete from t0 where id = 't0_e0'").ok());
      auto upd = rdb.db.ExecuteWrite(
          "update t1 set a1_0 = 3 where id = 't1_e1'");
      ASSERT_TRUE(upd.ok()) << upd.status().ToString();
    }
    rdb.db.SetMemoryBudget(0);
    rdb.db.SetThreads(1);
    rdb.db.mutable_exec_context()->batch_size = 1024;
    auto baseline = engine.Query(sql);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

    rdb.db.SetMemoryBudget(two_chunks);
    for (size_t batch_size : {size_t{1}, size_t{7}, size_t{1024}}) {
      for (size_t threads : {size_t{1}, size_t{3}}) {
        rdb.db.mutable_exec_context()->batch_size = batch_size;
        rdb.db.SetThreads(threads);
        auto run = engine.Query(sql);
        ASSERT_TRUE(run.ok()) << run.status().ToString();
        const std::string label =
            " (phase=" + std::to_string(phase) +
            ", batch_size=" + std::to_string(batch_size) +
            ", threads=" + std::to_string(threads) + ")";
        ASSERT_EQ(run->answers.size(), baseline->answers.size()) << label;
        for (size_t i = 0; i < run->answers.size(); ++i) {
          EXPECT_TRUE(
              RowsEqual(run->answers[i].row, baseline->answers[i].row))
              << "answer row " << i << " differs" << label;
          EXPECT_EQ(Bits(run->answers[i].probability),
                    Bits(baseline->answers[i].probability))
              << "probability of answer " << i << " is not bit-identical"
              << label;
        }
      }
    }
    // The budget genuinely constrained the run.
    EXPECT_GT(rdb.db.buffer_pool()->stats().chunks_evicted, 0u);
  }
}

TEST_F(ParallelDeterminismTest, ExplainAnalyzeReportsWorkers) {
  Database db;
  ASSERT_TRUE(db.CreateTable(TableSchema("t", {{"g", DataType::kInt64},
                                               {"v", DataType::kDouble}}))
                  .ok());
  Rng rng(3);
  std::vector<Row> rows;
  for (int i = 0; i < 8000; ++i) {
    rows.push_back({Value::Int(rng.Uniform(0, 9)),
                    Value::Double(rng.NextDouble())});
  }
  ASSERT_TRUE(db.InsertMany("t", std::move(rows)).ok());

  db.SetThreads(3);
  auto analyzed =
      db.ExplainAnalyze("select g, sum(v) from t group by g");
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_NE(analyzed->find("workers=3"), std::string::npos) << *analyzed;
  EXPECT_NE(analyzed->find("worker_rows=["), std::string::npos) << *analyzed;

  // Sequential runs must not claim any parallelism.
  db.SetThreads(1);
  auto sequential =
      db.ExplainAnalyze("select g, sum(v) from t group by g");
  ASSERT_TRUE(sequential.ok());
  EXPECT_EQ(sequential->find("workers="), std::string::npos) << *sequential;
}

}  // namespace
}  // namespace conquer
