// Shape checks of the RewriteClean output for all thirteen TPC-H queries:
// the rewritten SQL must append exactly one SUM over the product of every
// FROM relation's prob column and group by every original SELECT item.

#include <gtest/gtest.h>

#include "core/clean_engine.h"
#include "gen/tpch_dirty.h"
#include "gen/tpch_queries.h"
#include "sql/parser.h"

namespace conquer {
namespace {

class RewriteShapeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TpchDirtyConfig config;
    config.scale_factor = 0.001;
    config.inconsistency_factor = 2;
    auto gen = MakeTpchDirtyDatabase(config);
    ASSERT_TRUE(gen.ok());
    db_ = new TpchDirtyDatabase(std::move(gen).value());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static TpchDirtyDatabase* db_;
};

TpchDirtyDatabase* RewriteShapeTest::db_ = nullptr;

class PerQueryShape : public RewriteShapeTest,
                      public ::testing::WithParamInterface<int> {};

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0, pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

TEST_P(PerQueryShape, RewrittenSqlHasFig4Shape) {
  const TpchQuery* q = FindTpchQuery(GetParam());
  ASSERT_NE(q, nullptr);
  CleanAnswerEngine engine(db_->db.get(), &db_->dirty);
  auto rewritten_sql = engine.RewrittenSql(q->sql);
  ASSERT_TRUE(rewritten_sql.ok()) << rewritten_sql.status().ToString();

  auto original = Parser::Parse(q->sql);
  auto rewritten = Parser::Parse(*rewritten_sql);
  ASSERT_TRUE(original.ok() && rewritten.ok()) << *rewritten_sql;

  // Exactly one extra SELECT item: the SUM, aliased clean_prob.
  ASSERT_EQ((*rewritten)->select_list.size(),
            (*original)->select_list.size() + 1);
  const SelectItem& prob_item = (*rewritten)->select_list.back();
  EXPECT_EQ(prob_item.alias, "clean_prob");
  ASSERT_EQ(prob_item.expr->kind, Expr::Kind::kAggregate);
  EXPECT_EQ(prob_item.expr->agg, AggFunc::kSum);

  // The product has one prob factor per FROM relation.
  EXPECT_EQ(CountOccurrences(*rewritten_sql, ".prob"),
            (*original)->from.size());

  // GROUP BY mirrors the original SELECT list exactly.
  ASSERT_EQ((*rewritten)->group_by.size(), (*original)->select_list.size());
  for (size_t i = 0; i < (*rewritten)->group_by.size(); ++i) {
    EXPECT_TRUE((*rewritten)->group_by[i]->StructurallyEquals(
        *(*original)->select_list[i].expr))
        << "group key " << i << " in Q" << q->number;
  }

  // FROM / WHERE / ORDER BY are untouched.
  EXPECT_EQ((*rewritten)->from.size(), (*original)->from.size());
  EXPECT_EQ((*rewritten)->order_by.size(), (*original)->order_by.size());
  EXPECT_EQ((*rewritten)->where == nullptr, (*original)->where == nullptr);
  if ((*original)->where) {
    EXPECT_TRUE(
        (*rewritten)->where->StructurallyEquals(*(*original)->where));
  }

  // Rewriting is idempotent in effect: the rewritten query is no longer
  // SPJ, so rewriting it again must fail cleanly.
  auto twice = engine.RewrittenSql(*rewritten_sql);
  EXPECT_FALSE(twice.ok());
}

INSTANTIATE_TEST_SUITE_P(PaperQueries, PerQueryShape,
                         ::testing::Values(1, 2, 3, 4, 6, 9, 10, 11, 12, 14,
                                           17, 18, 20),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Q" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace conquer
