// End-to-end integration tests: the thirteen paper queries over the
// generated dirty TPC-H database (paper Section 5.3 setup).

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/clean_engine.h"
#include "gen/tpch_dirty.h"
#include "gen/tpch_queries.h"

namespace conquer {
namespace {

class TpchIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TpchDirtyConfig config;
    config.scale_factor = 0.002;  // ~300 customers, ~3000 orders
    config.inconsistency_factor = 3;
    config.seed = 11;
    auto gen = MakeTpchDirtyDatabase(config);
    ASSERT_TRUE(gen.ok()) << gen.status().ToString();
    dirty_db_ = new TpchDirtyDatabase(std::move(gen).value());
    ASSERT_TRUE(dirty_db_->BuildIndexesAndStats().ok());

    config.inconsistency_factor = 1;  // completely clean database
    auto clean = MakeTpchDirtyDatabase(config);
    ASSERT_TRUE(clean.ok());
    clean_db_ = new TpchDirtyDatabase(std::move(clean).value());
    ASSERT_TRUE(clean_db_->BuildIndexesAndStats().ok());
  }
  static void TearDownTestSuite() {
    delete dirty_db_;
    delete clean_db_;
    dirty_db_ = clean_db_ = nullptr;
  }

  static TpchDirtyDatabase* dirty_db_;
  static TpchDirtyDatabase* clean_db_;
};

TpchDirtyDatabase* TpchIntegrationTest::dirty_db_ = nullptr;
TpchDirtyDatabase* TpchIntegrationTest::clean_db_ = nullptr;

class TpchQueryTest : public TpchIntegrationTest,
                      public ::testing::WithParamInterface<int> {};

// Dfn 7: every paper query is in the rewritable class.
TEST_P(TpchQueryTest, IsRewritable) {
  const TpchQuery* q = FindTpchQuery(GetParam());
  ASSERT_NE(q, nullptr);
  CleanAnswerEngine engine(dirty_db_->db.get(), &dirty_db_->dirty);
  auto check = engine.Check(q->sql);
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_TRUE(check->rewritable) << "Q" << q->number << ": " << check->reason;
}

// The rewritten query runs and produces probabilities in (0, 1].
TEST_P(TpchQueryTest, RewrittenQueryExecutes) {
  const TpchQuery* q = FindTpchQuery(GetParam());
  ASSERT_NE(q, nullptr);
  CleanAnswerEngine engine(dirty_db_->db.get(), &dirty_db_->dirty);
  auto answers = engine.Query(q->sql);
  ASSERT_TRUE(answers.ok()) << "Q" << q->number << ": "
                            << answers.status().ToString();
  for (const CleanAnswer& a : answers->answers) {
    ASSERT_GT(a.probability, 0.0) << "Q" << q->number;
    ASSERT_LE(a.probability, 1.0 + 1e-9) << "Q" << q->number;
  }
}

// The rewriting only regroups the join result: the set of answer tuples
// equals the distinct result of the original query on the dirty database.
TEST_P(TpchQueryTest, AnswerTuplesMatchOriginalDistinct) {
  const TpchQuery* q = FindTpchQuery(GetParam());
  ASSERT_NE(q, nullptr);
  CleanAnswerEngine engine(dirty_db_->db.get(), &dirty_db_->dirty);
  auto answers = engine.Query(q->sql);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  auto original = dirty_db_->db->Query(q->sql);
  ASSERT_TRUE(original.ok()) << original.status().ToString();

  auto row_key = [](const Row& row) {
    std::string key;
    for (const Value& v : row) {
      key += v.ToString();
      key += '\x1f';
    }
    return key;
  };
  std::set<std::string> original_rows;
  for (const Row& row : original->rows) original_rows.insert(row_key(row));
  std::set<std::string> answer_rows;
  for (const CleanAnswer& a : answers->answers) {
    answer_rows.insert(row_key(a.row));
  }
  EXPECT_EQ(answer_rows, original_rows) << "Q" << q->number;
}

// On a completely clean database (if = 1) every clean answer is certain.
TEST_P(TpchQueryTest, CleanDatabaseYieldsCertainAnswers) {
  const TpchQuery* q = FindTpchQuery(GetParam());
  ASSERT_NE(q, nullptr);
  CleanAnswerEngine engine(clean_db_->db.get(), &clean_db_->dirty);
  auto answers = engine.Query(q->sql);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  for (const CleanAnswer& a : answers->answers) {
    ASSERT_NEAR(a.probability, 1.0, 1e-9) << "Q" << q->number;
  }
}

INSTANTIATE_TEST_SUITE_P(PaperQueries, TpchQueryTest,
                         ::testing::Values(1, 2, 3, 4, 6, 9, 10, 11, 12, 14,
                                           17, 18, 20),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Q" + std::to_string(info.param);
                         });

// UIS semantics: sweeping if trades entities for duplicates at roughly
// constant total size — the dirty and clean databases are comparable in
// rows, but only the dirty one has multi-tuple clusters.
TEST_F(TpchIntegrationTest, IfSweepKeepsTotalSizeComparable) {
  double ratio = static_cast<double>(dirty_db_->TotalRows()) /
                 static_cast<double>(clean_db_->TotalRows());
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
  auto customer = dirty_db_->db->GetTable("customer");
  ASSERT_TRUE(customer.ok());
  std::set<std::string> ids;
  for (const Row& r : (*customer)->rows()) ids.insert(r[0].string_value());
  EXPECT_LT(ids.size(), (*customer)->num_rows());  // real duplication
}

TEST_F(TpchIntegrationTest, Query3WithAndWithoutOrderBySameAnswers) {
  CleanAnswerEngine engine(dirty_db_->db.get(), &dirty_db_->dirty);
  auto with = engine.Query(TpchQuery3(true));
  auto without = engine.Query(TpchQuery3(false));
  ASSERT_TRUE(with.ok() && without.ok());
  EXPECT_EQ(with->answers.size(), without->answers.size());
}

TEST_F(TpchIntegrationTest, OfflineCleaningLosesAnswers) {
  // On the dirty database, offline cleaning (max-prob tuple per cluster)
  // generally returns a subset of the entities the clean-answer semantics
  // surfaces (it may also add tuples whose kept duplicate satisfies the
  // query while others do not; we check the typical loss direction with the
  // high-recall clean-answer count).
  CleanAnswerEngine engine(dirty_db_->db.get(), &dirty_db_->dirty);
  OfflineCleaningBaseline baseline(dirty_db_->db.get(), &dirty_db_->dirty);
  const TpchQuery* q = FindTpchQuery(6);
  auto clean_answers = engine.Query(q->sql);
  auto offline = baseline.Query(q->sql);
  ASSERT_TRUE(clean_answers.ok() && offline.ok());
  EXPECT_GT(clean_answers->answers.size(), offline->num_rows());
}

}  // namespace
}  // namespace conquer
