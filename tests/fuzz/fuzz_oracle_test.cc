// The oracle battery and the shrinker, mutation-tested end to end: a clean
// engine passes, every deliberately injected bug is caught by some oracle,
// and the resulting failure shrinks to a tiny reproducer that survives a
// corpus-format round trip.

#include "fuzz/oracles.h"

#include <gtest/gtest.h>

#include "common/str_util.h"
#include "fuzz/corpus.h"
#include "fuzz/fuzzer.h"
#include "fuzz/generator.h"
#include "fuzz/shrinker.h"

namespace conquer {
namespace fuzz {
namespace {

OracleOptions FastOracleOptions() {
  OracleOptions opts;
  opts.batch_sizes = {1, 1024};
  opts.chunk_capacities = {1, 65536};
  return opts;
}

// A seed whose generated case returns a non-empty answer set, so the
// injected bugs have something to corrupt.
uint64_t NonEmptySeed() {
  static const uint64_t cached = [] {
    FuzzConfig cfg;
    cfg.mutant_rate = 0.0;
    OracleOptions opts = FastOracleOptions();
    for (uint64_t seed = 1; seed < 64; ++seed) {
      auto report = RunOracles(GenerateCase(seed, cfg), opts);
      if (report.ok() && report->ok() && report->num_answers > 0 &&
          report->naive_checked) {
        return seed;
      }
    }
    return uint64_t{0};
  }();
  if (cached == 0) {
    ADD_FAILURE() << "no seed in [1, 64) yields a non-empty clean case";
    return 1;
  }
  return cached;
}

TEST(FuzzOracleTest, CleanEnginePassesManySeeds) {
  FuzzConfig cfg;
  OracleOptions opts = FastOracleOptions();
  for (uint64_t seed = 0; seed < 40; ++seed) {
    FuzzCase c = GenerateCase(seed, cfg);
    auto report = RunOracles(c, opts);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->ok())
        << "seed " << seed << ": [" << ViolationKindToString(report->kind)
        << "] " << report->violation << "\nsql: " << c.query.Sql();
  }
}

TEST(FuzzOracleTest, EveryInjectedBugIsCaught) {
  const uint64_t seed = NonEmptySeed();
  FuzzConfig cfg;
  cfg.mutant_rate = 0.0;
  FuzzCase c = GenerateCase(seed, cfg);
  for (BugInjection inject : {BugInjection::kProbBias,
                              BugInjection::kDropAnswer,
                              BugInjection::kParallelSkew}) {
    OracleOptions opts = FastOracleOptions();
    opts.inject = inject;
    auto report = RunOracles(c, opts);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_FALSE(report->ok())
        << "injection " << static_cast<int>(inject) << " went undetected";
  }
}

// The headline acceptance property: an injected probability bug shrinks to a
// reproducer of at most 2 tables and at most 10 rows.
TEST(FuzzOracleTest, InjectedProbBugShrinksToTinyCase) {
  const uint64_t seed = NonEmptySeed();
  FuzzConfig cfg;
  cfg.mutant_rate = 0.0;
  FuzzCase c = GenerateCase(seed, cfg);

  OracleOptions opts = FastOracleOptions();
  opts.inject = BugInjection::kProbBias;
  auto probe = [&](const FuzzCase& cand) {
    auto report = RunOracles(cand, opts);
    return report.ok() ? report->kind : ViolationKind::kNone;
  };
  ASSERT_NE(probe(c), ViolationKind::kNone);

  ShrinkStats stats;
  FuzzCase shrunk = ShrinkCase(c, probe, &stats);
  EXPECT_LE(shrunk.tables.size(), 2u);
  EXPECT_LE(shrunk.TotalRows(), 10u);
  EXPECT_GT(stats.attempts, 0u);
  // The shrunk case still fails, and with the same oracle family.
  EXPECT_NE(probe(shrunk), ViolationKind::kNone);
  // And passes once the bug is gone.
  OracleOptions clean = FastOracleOptions();
  auto report = RunOracles(shrunk, clean);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->violation;
}

TEST(FuzzOracleTest, ShrunkCaseSurvivesCorpusRoundTrip) {
  const uint64_t seed = NonEmptySeed();
  FuzzConfig cfg;
  cfg.mutant_rate = 0.0;
  OracleOptions opts = FastOracleOptions();
  opts.inject = BugInjection::kProbBias;
  auto probe = [&](const FuzzCase& cand) {
    auto report = RunOracles(cand, opts);
    return report.ok() ? report->kind : ViolationKind::kNone;
  };
  FuzzCase shrunk = ShrinkCase(GenerateCase(seed, cfg), probe, nullptr);

  std::string text = SerializeCase(shrunk, "round-trip test");
  auto parsed = ParseCaseText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << text;
  // Serialize -> parse -> serialize is a fixed point.
  std::string text2 = SerializeCase(*parsed);
  auto parsed2 = ParseCaseText(text2);
  ASSERT_TRUE(parsed2.ok()) << parsed2.status().ToString();
  EXPECT_EQ(SerializeCase(*parsed2), text2);
  // The reloaded case still trips the injected bug and passes without it.
  EXPECT_NE(probe(*parsed), ViolationKind::kNone);
  auto report = RunOracles(*parsed, FastOracleOptions());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->violation;
}

// The index dimension end to end: with the index knobs maxed every case
// carries CREATE INDEX ops (plus slice-invalidating SetValues and selective
// predicate templates), the oracle battery — which now sweeps index access
// on vs off — stays clean, and the ops survive a corpus round trip.
TEST(FuzzOracleTest, IndexedCasesPassOraclesAndRoundTrip) {
  FuzzConfig cfg;
  cfg.mutant_rate = 0.0;
  cfg.index_rate = 1.0;
  cfg.selective_pred_rate = 1.0;
  cfg.index_setvalue_rate = 1.0;
  OracleOptions opts = FastOracleOptions();
  size_t indexed = 0;
  size_t invalidated = 0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    FuzzCase c = GenerateCase(seed, cfg);
    for (const FuzzOp& op : c.ops) {
      if (op.kind == FuzzOp::Kind::kCreateIndex) ++indexed;
      if (op.kind == FuzzOp::Kind::kSetValue) ++invalidated;
    }
    auto report = RunOracles(c, opts);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->ok())
        << "seed " << seed << ": [" << ViolationKindToString(report->kind)
        << "] " << report->violation << "\nsql: " << c.query.Sql();

    std::string text = SerializeCase(c, "indexed round-trip test");
    auto parsed = ParseCaseText(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << text;
    ASSERT_EQ(parsed->ops.size(), c.ops.size());
    for (size_t i = 0; i < c.ops.size(); ++i) {
      EXPECT_EQ(static_cast<int>(parsed->ops[i].kind),
                static_cast<int>(c.ops[i].kind));
      EXPECT_EQ(parsed->ops[i].column, c.ops[i].column);
    }
  }
  // index_rate = 1.0: every table of every case got an index.
  EXPECT_GE(indexed, 20u);
  EXPECT_GT(invalidated, 0u) << "no case exercised slice invalidation";
}

TEST(FuzzOracleTest, MutantsExerciseRejectPath) {
  FuzzConfig cfg;
  cfg.mutant_rate = 1.0;
  OracleOptions opts = FastOracleOptions();
  size_t mutants = 0;
  for (uint64_t seed = 0; seed < 30; ++seed) {
    FuzzCase c = GenerateCase(seed, cfg);
    if (c.query.expect_rewritable) continue;
    ++mutants;
    auto report = RunOracles(c, opts);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->ok())
        << "mutant '" << c.query.mutation << "' violated: "
        << report->violation << "\nsql: " << c.query.Sql();
  }
  EXPECT_GT(mutants, 0u);
}

// The mutation-stage acceptance property: an injected renormalization bug
// (incremental maintenance skips the first touched cluster) is caught by
// the maintenance oracle and shrinks to a reproducer of at most 6 write
// steps that passes once the bug is gone.
TEST(FuzzOracleTest, RenormSkipIsCaughtAndShrinksToFewWrites) {
  FuzzConfig cfg;
  cfg.mutant_rate = 0.0;
  cfg.write_rate = 1.0;  // every rewritable case carries writes
  OracleOptions opts = FastOracleOptions();
  opts.inject = BugInjection::kRenormSkip;

  FuzzCase failing;
  bool found = false;
  for (uint64_t seed = 1; seed < 64 && !found; ++seed) {
    FuzzCase c = GenerateCase(seed, cfg);
    if (c.writes.empty()) continue;
    auto report = RunOracles(c, opts);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    if (!report->ok()) {
      EXPECT_EQ(report->kind, ViolationKind::kMaintenance)
          << report->violation;
      failing = std::move(c);
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no seed in [1, 64) trips the injected renorm bug";

  auto probe = [&](const FuzzCase& cand) {
    auto report = RunOracles(cand, opts);
    return report.ok() ? report->kind : ViolationKind::kNone;
  };
  ShrinkStats stats;
  FuzzCase shrunk = ShrinkCase(failing, probe, &stats);
  EXPECT_LE(shrunk.writes.size(), 6u);
  EXPECT_LE(shrunk.tables.size(), 2u);
  EXPECT_GT(stats.attempts, 0u);
  EXPECT_NE(probe(shrunk), ViolationKind::kNone);

  // The shrunk case survives a corpus round trip with its write steps.
  std::string text = SerializeCase(shrunk, "renorm_skip shrink test");
  auto parsed = ParseCaseText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << text;
  ASSERT_EQ(parsed->writes.size(), shrunk.writes.size());
  EXPECT_NE(probe(*parsed), ViolationKind::kNone);

  // A clean engine passes the same case, writes included.
  auto clean = RunOracles(shrunk, FastOracleOptions());
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_TRUE(clean->ok()) << clean->violation;
}

TEST(FuzzOracleTest, MutationStageRunsCleanOnManySeeds) {
  FuzzConfig cfg;
  cfg.mutant_rate = 0.0;
  cfg.write_rate = 1.0;
  OracleOptions opts = FastOracleOptions();
  size_t with_writes = 0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    FuzzCase c = GenerateCase(seed, cfg);
    if (!c.writes.empty()) ++with_writes;
    auto report = RunOracles(c, opts);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->ok())
        << "seed " << seed << ": [" << ViolationKindToString(report->kind)
        << "] " << report->violation;
  }
  EXPECT_GT(with_writes, 0u);
}

TEST(FuzzOracleTest, ParseBugInjectionNames) {
  EXPECT_TRUE(ParseBugInjection("none").ok());
  EXPECT_TRUE(ParseBugInjection("prob_bias").ok());
  EXPECT_TRUE(ParseBugInjection("drop_answer").ok());
  EXPECT_TRUE(ParseBugInjection("parallel_skew").ok());
  EXPECT_TRUE(ParseBugInjection("renorm_skip").ok());
  EXPECT_FALSE(ParseBugInjection("nonsense").ok());
}

TEST(FuzzOracleTest, RunFuzzSmokeIsClean) {
  FuzzOptions options;
  options.seed = 1234;
  options.iterations = 15;
  options.oracle = FastOracleOptions();
  auto summary = RunFuzz(options);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->violations, 0u)
      << Join(summary->violation_messages, "\n");
  EXPECT_EQ(summary->cases, 15u);
  EXPECT_GT(summary->naive_checked, 0u);
}

}  // namespace
}  // namespace fuzz
}  // namespace conquer
