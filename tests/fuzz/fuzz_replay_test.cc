// Replays every committed reproducer in tests/fuzz/corpus/ through the full
// oracle battery. A case that ever fails here means a previously-fixed bug
// (or a fresh regression) is back.

#include <gtest/gtest.h>

#include "fuzz/corpus.h"
#include "fuzz/fuzzer.h"

#ifndef CONQUER_FUZZ_CORPUS_DIR
#error "CONQUER_FUZZ_CORPUS_DIR must point at tests/fuzz/corpus"
#endif

namespace conquer {
namespace fuzz {
namespace {

TEST(FuzzReplayTest, CorpusIsNonEmpty) {
  EXPECT_FALSE(ListCaseFiles(CONQUER_FUZZ_CORPUS_DIR).empty())
      << "no .case files under " << CONQUER_FUZZ_CORPUS_DIR;
}

TEST(FuzzReplayTest, EveryCorpusCaseReplaysClean) {
  OracleOptions opts;
  for (const std::string& path : ListCaseFiles(CONQUER_FUZZ_CORPUS_DIR)) {
    SCOPED_TRACE(path);
    auto loaded = LoadCaseFile(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    auto report = ReplayCase(*loaded, opts);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->ok())
        << "[" << ViolationKindToString(report->kind) << "] "
        << report->violation;
  }
}

TEST(FuzzReplayTest, EveryCorpusCaseRoundTrips) {
  for (const std::string& path : ListCaseFiles(CONQUER_FUZZ_CORPUS_DIR)) {
    SCOPED_TRACE(path);
    auto loaded = LoadCaseFile(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    std::string text = SerializeCase(*loaded);
    auto reparsed = ParseCaseText(text);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << text;
    EXPECT_EQ(SerializeCase(*reparsed), text);
  }
}

}  // namespace
}  // namespace fuzz
}  // namespace conquer
