// Properties of the random case generator: determinism, well-formed dirty
// databases, rewritability expectations that the real checker agrees with.

#include "fuzz/generator.h"

#include <gtest/gtest.h>

#include <set>

#include "core/clean_engine.h"
#include "fuzz/corpus.h"

namespace conquer {
namespace fuzz {
namespace {

TEST(FuzzGeneratorTest, DeterministicForSeed) {
  FuzzConfig cfg;
  for (uint64_t seed : {1ULL, 42ULL, 0xdeadbeefULL}) {
    FuzzCase a = GenerateCase(seed, cfg);
    FuzzCase b = GenerateCase(seed, cfg);
    EXPECT_EQ(SerializeCase(a), SerializeCase(b)) << "seed " << seed;
  }
}

TEST(FuzzGeneratorTest, DistinctSeedsDiffer) {
  FuzzConfig cfg;
  EXPECT_NE(SerializeCase(GenerateCase(7, cfg)),
            SerializeCase(GenerateCase(8, cfg)));
}

TEST(FuzzGeneratorTest, ClusterProbabilitiesSumToOne) {
  FuzzConfig cfg;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    FuzzCase c = GenerateCase(seed, cfg);
    for (const ClusterSum& cluster : ClusterProbabilitySums(c)) {
      EXPECT_NEAR(cluster.sum, 1.0, 1e-9)
          << "seed " << seed << " cluster " << cluster.table << "."
          << cluster.id;
    }
  }
}

TEST(FuzzGeneratorTest, CandidateProductRespectsCap) {
  FuzzConfig cfg;
  cfg.max_candidate_product = 64;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    FuzzCase c = GenerateCase(seed, cfg);
    uint64_t product = 1;
    for (const auto& cluster : ClusterProbabilitySums(c)) {
      product *= cluster.rows;
    }
    EXPECT_LE(product, cfg.max_candidate_product) << "seed " << seed;
  }
}

TEST(FuzzGeneratorTest, TableCountWithinBounds) {
  FuzzConfig cfg;
  cfg.min_tables = 2;
  cfg.max_tables = 3;
  for (uint64_t seed = 0; seed < 30; ++seed) {
    FuzzCase c = GenerateCase(seed, cfg);
    EXPECT_GE(c.tables.size(), 2u);
    EXPECT_LE(c.tables.size(), 3u);
    EXPECT_GE(c.query.from.size(), c.tables.size());
  }
}

TEST(FuzzGeneratorTest, NullDensityZeroMeansNoNulls) {
  FuzzConfig cfg;
  cfg.null_density = 0.0;
  FuzzCase c = GenerateCase(3, cfg);
  for (const FuzzTable& t : c.tables) {
    for (const Row& row : t.rows) {
      for (const Value& v : row) EXPECT_FALSE(v.is_null());
    }
  }
}

TEST(FuzzGeneratorTest, HighNullDensityProducesNulls) {
  FuzzConfig cfg;
  cfg.null_density = 0.9;
  size_t nulls = 0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    FuzzCase c = GenerateCase(seed, cfg);
    for (const FuzzTable& t : c.tables) {
      for (const Row& row : t.rows) {
        for (const Value& v : row) nulls += v.is_null() ? 1 : 0;
      }
    }
  }
  EXPECT_GT(nulls, 0u);
}

// Every case the generator expects to be rewritable must be accepted by the
// actual Dfn 7 checker, and every mutant must be rejected with a reason.
TEST(FuzzGeneratorTest, ExpectationsAgreeWithChecker) {
  FuzzConfig cfg;
  cfg.mutant_rate = 0.5;  // plenty of both kinds
  size_t rewritable = 0;
  size_t mutants = 0;
  for (uint64_t seed = 100; seed < 160; ++seed) {
    FuzzCase c = GenerateCase(seed, cfg);
    auto built = BuildFuzzDatabase(c);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    CleanAnswerEngine engine(built->db.get(), &built->dirty);
    auto check = engine.Check(c.query.Sql());
    ASSERT_TRUE(check.ok()) << "seed " << seed << ": "
                            << check.status().ToString() << "\nsql: "
                            << c.query.Sql();
    if (c.query.expect_rewritable) {
      ++rewritable;
      EXPECT_TRUE(check->rewritable)
          << "seed " << seed << " rejected: " << check->reason << "\nsql: "
          << c.query.Sql();
    } else {
      ++mutants;
      EXPECT_FALSE(check->rewritable)
          << "seed " << seed << " mutant '" << c.query.mutation
          << "' accepted\nsql: " << c.query.Sql();
      EXPECT_FALSE(check->reason.empty()) << "seed " << seed;
    }
  }
  EXPECT_GT(rewritable, 0u);
  EXPECT_GT(mutants, 0u);
}

TEST(FuzzGeneratorTest, MutantsCoverMultipleMutationKinds) {
  FuzzConfig cfg;
  cfg.mutant_rate = 1.0;
  std::set<std::string> kinds;
  for (uint64_t seed = 0; seed < 80; ++seed) {
    kinds.insert(GenerateCase(seed, cfg).query.mutation);
  }
  EXPECT_GE(kinds.size(), 4u) << "mutation diversity too low";
}

}  // namespace
}  // namespace fuzz
}  // namespace conquer
