// Unit tests for the binder and planner: resolution, type checking,
// plan shapes (pushdown, join ordering, index selection), and EXPLAIN.

#include <gtest/gtest.h>

#include "engine/database.h"
#include "plan/binder.h"
#include "sql/parser.h"

namespace conquer {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable(TableSchema("small", {{"k", DataType::kInt64},
                                                      {"v", DataType::kString}}))
                    .ok());
    ASSERT_TRUE(db_.CreateTable(TableSchema("big", {{"k", DataType::kInt64},
                                                    {"fk", DataType::kInt64},
                                                    {"x", DataType::kDouble}}))
                    .ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(db_.Insert("small", {Value::Int(i),
                                       Value::String("s" + std::to_string(i))})
                      .ok());
    }
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(db_.Insert("big", {Value::Int(i), Value::Int(i % 5),
                                     Value::Double(i * 0.5)})
                      .ok());
    }
    ASSERT_TRUE(db_.AnalyzeAll().ok());
  }

  std::string Explain(const std::string& sql) {
    auto plan = db_.Explain(sql);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString() << " for: " << sql;
    return plan.ok() ? *plan : "";
  }

  Database db_;
};

TEST_F(PlannerTest, SingleTablePredicateIsPushedIntoScan) {
  std::string plan = Explain("select v from small s where k = 3 and v <> 'x'");
  // No standalone Filter node: the predicate lives in the scan.
  EXPECT_EQ(plan.find("Filter("), std::string::npos) << plan;
  EXPECT_NE(plan.find("SeqScan(small"), std::string::npos) << plan;
}

TEST_F(PlannerTest, EquiJoinUsesHashJoin) {
  std::string plan =
      Explain("select s.v from small s, big b where b.fk = s.k");
  EXPECT_NE(plan.find("HashJoin"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("CrossJoin"), std::string::npos) << plan;
}

TEST_F(PlannerTest, NoJoinPredicateMeansCrossJoin) {
  std::string plan = Explain("select s.v from small s, big b");
  EXPECT_NE(plan.find("CrossJoin"), std::string::npos) << plan;
}

TEST_F(PlannerTest, IndexPointLookupIsChosenWhenAvailable) {
  ASSERT_TRUE(db_.CreateIndex("big", "k").ok());
  std::string plan = Explain("select x from big b where k = 42");
  EXPECT_NE(plan.find("IndexScan(big"), std::string::npos) << plan;
  // Without an index the same query sequential-scans.
  std::string plan2 = Explain("select x from big b where fk = 2");
  EXPECT_NE(plan2.find("SeqScan(big"), std::string::npos) << plan2;
}

TEST_F(PlannerTest, CostModelKeepsZonePrunedScanOnLowSelectivity) {
  // `fk` has 5 distinct values over 100 rows: the histogram estimates the
  // equality keeps ~20% of the table, past the index/scan crossover. Even
  // with an index available the planner must keep the sequential scan.
  ASSERT_TRUE(db_.CreateIndex("big", "fk").ok());
  std::string plan = Explain("select x from big b where fk = 2");
  EXPECT_NE(plan.find("SeqScan(big"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("IndexScan"), std::string::npos) << plan;
  // The selective, all-distinct column still flips to the index.
  ASSERT_TRUE(db_.CreateIndex("big", "k").ok());
  std::string plan2 = Explain("select x from big b where k = 42");
  EXPECT_NE(plan2.find("IndexScan(big"), std::string::npos) << plan2;
}

TEST_F(PlannerTest, TinyBuildSideUpgradesToIndexNestedLoopJoin) {
  // small (5 rows) joins big (100 rows) on big's indexed unique key: the
  // running plan is far below the hash-build crossover, so the planner
  // probes big's index per outer row instead of scanning all of big.
  ASSERT_TRUE(db_.CreateIndex("big", "k").ok());
  std::string plan =
      Explain("select s.v, b.x from small s, big b where b.k = s.k");
  EXPECT_NE(plan.find("IndexNestedLoopJoin(big"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("HashJoin"), std::string::npos) << plan;
  // Without the index the same query hash-joins.
  std::string plan2 =
      Explain("select s.v, b.x from small s, big b where b.fk = s.k");
  EXPECT_NE(plan2.find("HashJoin"), std::string::npos) << plan2;
}

TEST_F(PlannerTest, NonEquiJoinBecomesResidualFilter) {
  std::string plan =
      Explain("select s.v from small s, big b where b.x > s.k");
  EXPECT_NE(plan.find("Filter("), std::string::npos) << plan;
}

TEST_F(PlannerTest, AggregatePlansHashAggregate) {
  std::string plan =
      Explain("select fk, count(*) from big b group by fk");
  EXPECT_NE(plan.find("HashAggregate"), std::string::npos) << plan;
}

TEST_F(PlannerTest, OrderByPlansSortAndStripsHiddenColumn) {
  std::string plan = Explain("select v from small s order by k desc");
  EXPECT_NE(plan.find("Sort("), std::string::npos) << plan;
  EXPECT_NE(plan.find("StripColumns"), std::string::npos) << plan;
}

TEST_F(PlannerTest, DistinctAndLimitAppearInPlan) {
  std::string plan = Explain("select distinct fk from big b limit 3");
  EXPECT_NE(plan.find("Distinct"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Limit(3)"), std::string::npos) << plan;
}

class BinderTest : public PlannerTest {};

TEST_F(BinderTest, ResolvesSlotsAcrossFromList) {
  auto stmt = Parser::Parse(
      "select s.v, b.x from small s, big b where b.fk = s.k");
  ASSERT_TRUE(stmt.ok());
  Binder binder(&db_.catalog());
  auto bound = binder.Bind(std::move(*stmt));
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  // small occupies slots [0,2), big [2,5).
  EXPECT_EQ(bound->total_slots, 5u);
  EXPECT_EQ(bound->stmt->select_list[0].expr->slot, 1);  // s.v
  EXPECT_EQ(bound->stmt->select_list[1].expr->slot, 4);  // b.x
  EXPECT_EQ(bound->output_names[0], "v");
  EXPECT_EQ(bound->output_types[1], DataType::kDouble);
}

TEST_F(BinderTest, UnqualifiedColumnsResolveWhenUnambiguous) {
  auto stmt = Parser::Parse("select v, x from small s, big b "
                            "where fk = 1");
  ASSERT_TRUE(stmt.ok());
  Binder binder(&db_.catalog());
  EXPECT_TRUE(binder.Bind(std::move(*stmt)).ok());
}

TEST_F(BinderTest, AmbiguousColumnsAreRejected) {
  auto stmt = Parser::Parse("select k from small s, big b");
  ASSERT_TRUE(stmt.ok());
  Binder binder(&db_.catalog());
  auto bound = binder.Bind(std::move(*stmt));
  ASSERT_FALSE(bound.ok());
  EXPECT_NE(bound.status().message().find("ambiguous"), std::string::npos);
}

TEST_F(BinderTest, DuplicateAliasesAreRejected) {
  auto stmt = Parser::Parse("select 1 from small t, big t");
  ASSERT_TRUE(stmt.ok());
  Binder binder(&db_.catalog());
  EXPECT_FALSE(binder.Bind(std::move(*stmt)).ok());
}

TEST_F(BinderTest, WhereMustBeBoolean) {
  auto stmt = Parser::Parse("select v from small s where k + 1");
  ASSERT_TRUE(stmt.ok());
  Binder binder(&db_.catalog());
  EXPECT_EQ(binder.Bind(std::move(*stmt)).status().code(),
            StatusCode::kTypeError);
}

TEST_F(BinderTest, AggregatesForbiddenInWhere) {
  auto stmt = Parser::Parse("select v from small s where sum(k) > 1");
  ASSERT_TRUE(stmt.ok());
  Binder binder(&db_.catalog());
  EXPECT_FALSE(binder.Bind(std::move(*stmt)).ok());
}

TEST_F(BinderTest, TypeInference) {
  auto stmt = Parser::Parse(
      "select s.k + 1, x * 2, s.k / 2, v, count(*), avg(s.k) "
      "from big b, small s "
      "where b.fk = s.k group by s.k + 1, x * 2, s.k / 2, v");
  ASSERT_TRUE(stmt.ok());
  Binder binder(&db_.catalog());
  auto bound = binder.Bind(std::move(*stmt));
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ(bound->output_types[0], DataType::kInt64);   // int + int
  EXPECT_EQ(bound->output_types[1], DataType::kDouble);  // double * int
  EXPECT_EQ(bound->output_types[2], DataType::kDouble);  // '/' widens
  EXPECT_EQ(bound->output_types[3], DataType::kString);
  EXPECT_EQ(bound->output_types[4], DataType::kInt64);   // COUNT
  EXPECT_EQ(bound->output_types[5], DataType::kDouble);  // AVG
}

TEST_F(BinderTest, DateArithmeticTypes) {
  ASSERT_TRUE(
      db_.CreateTable(TableSchema("ev", {{"d", DataType::kDate}})).ok());
  auto stmt = Parser::Parse("select d + 30, d - d from ev e");
  ASSERT_TRUE(stmt.ok());
  Binder binder(&db_.catalog());
  auto bound = binder.Bind(std::move(*stmt));
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ(bound->output_types[0], DataType::kDate);
  EXPECT_EQ(bound->output_types[1], DataType::kInt64);
}

TEST_F(BinderTest, SelectStarExpandsAllColumns) {
  auto stmt = Parser::Parse("select * from small s, big b where b.fk = s.k");
  ASSERT_TRUE(stmt.ok());
  Binder binder(&db_.catalog());
  auto bound = binder.Bind(std::move(*stmt));
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(bound->num_visible_columns, 5u);
}

TEST_F(BinderTest, OrderByUngroupedExpressionRejected) {
  auto stmt = Parser::Parse(
      "select fk, count(*) from big b group by fk order by x");
  ASSERT_TRUE(stmt.ok());
  Binder binder(&db_.catalog());
  EXPECT_FALSE(binder.Bind(std::move(*stmt)).ok());
}

}  // namespace
}  // namespace conquer
