// Tests of the dynamic-programming join ordering: result equivalence with
// the greedy planner and sensible order choices under statistics.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/database.h"

namespace conquer {
namespace {

class JoinOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A chain fact -> dim1 -> dim2 with very different sizes.
    ASSERT_TRUE(db_.CreateTable(TableSchema("fact", {{"k1", DataType::kInt64},
                                                     {"v", DataType::kInt64}}))
                    .ok());
    ASSERT_TRUE(db_.CreateTable(TableSchema("dim1", {{"k1", DataType::kInt64},
                                                     {"k2", DataType::kInt64}}))
                    .ok());
    ASSERT_TRUE(
        db_.CreateTable(TableSchema("dim2", {{"k2", DataType::kInt64},
                                             {"name", DataType::kString}}))
            .ok());
    Rng rng(8);
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(db_.Insert("fact", {Value::Int(rng.Uniform(0, 49)),
                                      Value::Int(rng.Uniform(0, 9))})
                      .ok());
    }
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(db_.Insert("dim1", {Value::Int(i), Value::Int(i % 5)}).ok());
    }
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(db_.Insert("dim2", {Value::Int(i),
                                      Value::String("d" + std::to_string(i))})
                      .ok());
    }
    ASSERT_TRUE(db_.AnalyzeAll().ok());
  }

  static constexpr const char* kChainQuery =
      "select f.v, d2.name from fact f, dim1 d1, dim2 d2 "
      "where f.k1 = d1.k1 and d1.k2 = d2.k2 and f.v > 2 "
      "order by f.v, d2.name";

  Database db_;
};

TEST_F(JoinOrderTest, DpAndGreedyReturnIdenticalResults) {
  auto greedy = db_.Query(kChainQuery);
  ASSERT_TRUE(greedy.ok()) << greedy.status().ToString();

  PlannerOptions options;
  options.join_ordering = PlannerOptions::JoinOrdering::kDynamicProgramming;
  db_.set_planner_options(options);
  auto dp = db_.Query(kChainQuery);
  ASSERT_TRUE(dp.ok()) << dp.status().ToString();

  ASSERT_EQ(greedy->num_rows(), dp->num_rows());
  for (size_t i = 0; i < greedy->num_rows(); ++i) {
    for (size_t c = 0; c < greedy->num_columns(); ++c) {
      ASSERT_EQ(greedy->rows[i][c].TotalCompare(dp->rows[i][c]), 0)
          << "row " << i;
    }
  }
}

TEST_F(JoinOrderTest, DpPlanIsProduced) {
  PlannerOptions options;
  options.join_ordering = PlannerOptions::JoinOrdering::kDynamicProgramming;
  db_.set_planner_options(options);
  auto plan = db_.Explain(kChainQuery);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->find("HashJoin"), std::string::npos) << *plan;
  EXPECT_EQ(plan->find("CrossJoin"), std::string::npos) << *plan;
}

TEST_F(JoinOrderTest, DpHandlesCrossProducts) {
  PlannerOptions options;
  options.join_ordering = PlannerOptions::JoinOrdering::kDynamicProgramming;
  db_.set_planner_options(options);
  auto rs = db_.Query("select d1.k1, d2.k2 from dim1 d1, dim2 d2");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->num_rows(), 250u);
}

TEST_F(JoinOrderTest, DpFallsBackGracefullyBeyondTableBound) {
  PlannerOptions options;
  options.join_ordering = PlannerOptions::JoinOrdering::kDynamicProgramming;
  options.max_dp_tables = 2;  // force the fallback on a 3-table query
  db_.set_planner_options(options);
  auto rs = db_.Query(kChainQuery);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_GT(rs->num_rows(), 0u);
}

TEST_F(JoinOrderTest, SingleTableUnaffected) {
  PlannerOptions options;
  options.join_ordering = PlannerOptions::JoinOrdering::kDynamicProgramming;
  db_.set_planner_options(options);
  auto rs = db_.Query("select v from fact f where v = 3");
  ASSERT_TRUE(rs.ok());
  EXPECT_GT(rs->num_rows(), 0u);
}

// Randomized equivalence: DP and greedy agree on arbitrary chain/star
// queries with selections.
class JoinOrderPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinOrderPropertyTest, DpEquivalentToGreedy) {
  Rng rng(GetParam());
  Database db;
  int n = static_cast<int>(rng.Uniform(2, 4));
  // tN joins tN-1 on column j (star toward t0 or chain, randomly).
  std::vector<int> parent(n, 0);
  for (int t = 1; t < n; ++t) parent[t] = static_cast<int>(rng.Uniform(0, t - 1));
  for (int t = 0; t < n; ++t) {
    ASSERT_TRUE(
        db.CreateTable(TableSchema("t" + std::to_string(t),
                                   {{"k", DataType::kInt64},
                                    {"fk", DataType::kInt64},
                                    {"v", DataType::kInt64}}))
            .ok());
    int rows = static_cast<int>(rng.Uniform(5, 120));
    for (int r = 0; r < rows; ++r) {
      ASSERT_TRUE(db.Insert("t" + std::to_string(t),
                            {Value::Int(rng.Uniform(0, 20)),
                             Value::Int(rng.Uniform(0, 20)),
                             Value::Int(rng.Uniform(0, 5))})
                      .ok());
    }
  }
  ASSERT_TRUE(db.AnalyzeAll().ok());
  std::string sql = "select t0.v from ";
  for (int t = 0; t < n; ++t) {
    if (t > 0) sql += ", ";
    sql += "t" + std::to_string(t);
  }
  std::string sep = " where ";
  for (int t = 1; t < n; ++t) {
    sql += sep + "t" + std::to_string(t) + ".fk = t" +
           std::to_string(parent[t]) + ".k";
    sep = " and ";
  }
  sql += sep + "t0.v <= 3 order by t0.v";

  auto greedy = db.Query(sql);
  ASSERT_TRUE(greedy.ok()) << greedy.status().ToString() << " " << sql;
  PlannerOptions options;
  options.join_ordering = PlannerOptions::JoinOrdering::kDynamicProgramming;
  db.set_planner_options(options);
  auto dp = db.Query(sql);
  ASSERT_TRUE(dp.ok()) << dp.status().ToString();
  ASSERT_EQ(greedy->num_rows(), dp->num_rows()) << sql;
  for (size_t i = 0; i < greedy->num_rows(); ++i) {
    ASSERT_EQ(greedy->rows[i][0].TotalCompare(dp->rows[i][0]), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinOrderPropertyTest,
                         ::testing::Range<uint64_t>(100, 116));

}  // namespace
}  // namespace conquer
